//! Recovery planning and execution.
//!
//! The §2 end-game: once forensics has placed the intrusion at time `T`
//! and named the suspect principals, build a *reviewable* plan of
//! restorative actions and execute it through the same versioned
//! interface everything else uses. Recovery never rewrites history —
//! restores are copy-forward writes (§3.3), planted objects are
//! landmark-pinned before removal so the evidence outlives the
//! detection window, and the whole procedure is itself versioned and
//! auditable.

use std::collections::{BTreeMap, BTreeSet};

use s4_clock::SimTime;
use s4_core::drive::ObjectAttrs;
use s4_core::rpc::LAST_CREATED;
use s4_core::{
    AclEntry, AclTable, AuditRecord, ClientId, ObjectId, Request, RequestContext, Response,
    S4Drive, S4Error, UserId,
};
use s4_simdisk::BlockDev;

use crate::dirblob::{self, EntryKind};
use crate::forensics::tree_at;
use crate::timeline::is_mutation;

/// Which principals are considered compromised.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Suspects {
    /// Compromised client machines.
    pub clients: BTreeSet<u32>,
    /// Compromised (stolen) user identities.
    pub users: BTreeSet<u32>,
}

impl Suspects {
    /// Suspect a single client machine (the common §2 case: damage is
    /// bounded to requests from the compromised host).
    pub fn client(c: ClientId) -> Self {
        Suspects {
            clients: BTreeSet::from([c.0]),
            users: BTreeSet::new(),
        }
    }

    /// Suspect a user identity regardless of client.
    pub fn user(u: UserId) -> Self {
        Suspects {
            clients: BTreeSet::new(),
            users: BTreeSet::from([u.0]),
        }
    }

    /// Whether a record was issued by a suspect principal.
    pub fn matches(&self, rec: &AuditRecord) -> bool {
        self.clients.contains(&rec.client.0) || self.users.contains(&rec.user.0)
    }
}

/// One restorative step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Copy the object's pre-intrusion version forward (contents,
    /// length, and attributes as of `to`).
    RestoreContent {
        /// Object to restore.
        object: ObjectId,
        /// Version instant to restore to.
        to: SimTime,
    },
    /// Recreate a deleted object from its version at `to` as a fresh
    /// object, relinking it under `parent` when the old path is known.
    Undelete {
        /// The deleted object.
        object: ObjectId,
        /// Version instant to resurrect.
        to: SimTime,
        /// `(directory object, entry name)` to relink under, if known.
        parent: Option<(ObjectId, String)>,
        /// Directory-entry kind for the relinked entry.
        kind: EntryKind,
    },
    /// Remove an object the intruder planted: landmark-pin the current
    /// version as evidence, unlink it from `parent`, then delete it.
    RemovePlanted {
        /// The planted object.
        object: ObjectId,
        /// `(directory object, entry name)` to unlink from, if known.
        parent: Option<(ObjectId, String)>,
    },
    /// Landmark-pin the version at `at` so already-deleted evidence
    /// (e.g. an exploit tool the intruder removed) survives the
    /// detection window.
    Quarantine {
        /// The deleted object holding the evidence.
        object: ObjectId,
        /// Instant of the version to pin.
        at: SimTime,
    },
}

impl core::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryAction::RestoreContent { object, to } => {
                write!(f, "restore {object} to its version at {to}")
            }
            RecoveryAction::Undelete {
                object,
                to,
                parent,
                ..
            } => match parent {
                Some((dir, name)) => write!(
                    f,
                    "undelete {object} from its version at {to}, relinked as '{name}' in {dir}"
                ),
                None => write!(f, "undelete {object} from its version at {to} (path unknown)"),
            },
            RecoveryAction::RemovePlanted { object, .. } => {
                write!(f, "remove planted {object} (landmark-pinned as evidence first)")
            }
            RecoveryAction::Quarantine { object, at } => {
                write!(f, "quarantine {object}: pin its version at {at} as evidence")
            }
        }
    }
}

/// An action plus the forensic justification for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedAction {
    /// What to do.
    pub action: RecoveryAction,
    /// Why (paths and op counts from the audit log).
    pub reason: String,
}

/// A reviewable recovery plan. Nothing here has touched the drive yet;
/// an administrator inspects it (e.g. via the CLI) and then runs
/// [`execute_plan`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// The intrusion time `T` the plan restores to.
    pub intrusion_time: SimTime,
    /// When the plan was computed.
    pub planned_at: SimTime,
    /// Restorative steps, in execution order (directories first, so
    /// undeletes and unlinks operate on already-restored namespaces).
    pub actions: Vec<PlannedAction>,
}

/// What [`execute_plan`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Actions applied successfully.
    pub applied: usize,
    /// `(action index, error)` for actions that failed; execution
    /// continues past failures.
    pub failed: Vec<(usize, String)>,
    /// `(old, new)` object ids for undeleted objects.
    pub undeleted: Vec<(ObjectId, ObjectId)>,
}

fn is_reserved(oid: u64) -> bool {
    oid <= s4_core::ALERT_OBJECT.0
}

/// Builds a recovery plan: every object mutated after `t` by a suspect
/// principal is classified against its state at `t` (admin only).
///
/// * existed at `t`, still live — [`RecoveryAction::RestoreContent`]
/// * existed at `t`, now deleted — [`RecoveryAction::Undelete`]
/// * created after `t`, still live — [`RecoveryAction::RemovePlanted`]
/// * created after `t`, already deleted — [`RecoveryAction::Quarantine`]
pub fn plan_recovery<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    suspects: &Suspects,
    t: SimTime,
) -> Result<RecoveryPlan, S4Error> {
    let records = drive.read_audit_records(admin)?;

    // Objects a suspect mutated after T, with op counts for the reason
    // string and the time of the last content-bearing mutation (the
    // quarantine instant for already-deleted evidence).
    let mut touched: BTreeMap<u64, BTreeMap<&'static str, u32>> = BTreeMap::new();
    let mut last_content_at: BTreeMap<u64, SimTime> = BTreeMap::new();
    for r in &records {
        if r.time <= t || !r.ok || !suspects.matches(r) {
            continue;
        }
        if !is_mutation(r.op) || is_reserved(r.object.0) {
            continue;
        }
        *touched
            .entry(r.object.0)
            .or_default()
            .entry(op_name(r.op))
            .or_insert(0) += 1;
        if !matches!(r.op, s4_core::OpKind::Delete) {
            last_content_at.insert(r.object.0, r.time);
        }
    }

    // Namespace context: oid -> (path, parent dir, name, kind) at T and
    // now, across every partition.
    let names_then = namespace_index(drive, admin, Some(t))?;
    let names_now = namespace_index(drive, admin, None)?;

    let mut restores_dirs = Vec::new();
    let mut restores_files = Vec::new();
    // (is_dir, path depth, action): undeletes run directories first,
    // shallowest first, so children relink into already-resurrected
    // parents; removals run files first and directories deepest-first,
    // so nothing is unlinked from an already-deleted parent.
    let mut undeletes: Vec<(bool, usize, PlannedAction)> = Vec::new();
    let mut removals: Vec<(bool, usize, PlannedAction)> = Vec::new();
    let mut quarantines = Vec::new();

    for (&oid_raw, ops) in &touched {
        let oid = ObjectId(oid_raw);
        let existed_then = matches!(
            drive.op_getattr(admin, oid, Some(t)),
            Ok(a) if a.deleted.is_none()
        );
        let live_now = drive.op_getattr(admin, oid, None).is_ok();
        let ops_desc = ops
            .iter()
            .map(|(k, n)| format!("{k}x{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let path_of = |idx: &BTreeMap<u64, NameInfo>| {
            idx.get(&oid_raw)
                .map(|i| i.path.clone())
                .unwrap_or_else(|| format!("{oid}"))
        };
        match (existed_then, live_now) {
            (true, true) => {
                let info = names_then.get(&oid_raw);
                let is_dir = info.map(|i| i.kind == EntryKind::Dir).unwrap_or(false);
                let planned = PlannedAction {
                    action: RecoveryAction::RestoreContent { object: oid, to: t },
                    reason: format!(
                        "{} tampered after T by suspect ({ops_desc}); restore to pre-intrusion \
                         version",
                        path_of(&names_then)
                    ),
                };
                if is_dir {
                    restores_dirs.push(planned);
                } else {
                    restores_files.push(planned);
                }
            }
            (true, false) => {
                let info = names_then.get(&oid_raw);
                let is_dir = info.map(|i| i.kind == EntryKind::Dir).unwrap_or(false);
                let depth = info.map(|i| i.path.matches('/').count()).unwrap_or(0);
                undeletes.push((
                    is_dir,
                    depth,
                    PlannedAction {
                        action: RecoveryAction::Undelete {
                            object: oid,
                            to: t,
                            parent: info.map(|i| (i.parent, i.name.clone())),
                            kind: info.map(|i| i.kind).unwrap_or(EntryKind::File),
                        },
                        reason: format!(
                            "{} destroyed after T by suspect ({ops_desc}); recreate from the \
                             history pool",
                            path_of(&names_then)
                        ),
                    },
                ));
            }
            (false, true) => {
                let info = names_now.get(&oid_raw);
                let is_dir = info.map(|i| i.kind == EntryKind::Dir).unwrap_or(false);
                let depth = info.map(|i| i.path.matches('/').count()).unwrap_or(0);
                removals.push((
                    is_dir,
                    depth,
                    PlannedAction {
                        action: RecoveryAction::RemovePlanted {
                            object: oid,
                            parent: info.map(|i| (i.parent, i.name.clone())),
                        },
                        reason: format!(
                            "{} planted after T by suspect ({ops_desc}); pin as evidence and \
                             remove",
                            path_of(&names_now)
                        ),
                    },
                ));
            }
            (false, false) => {
                if let Some(&at) = last_content_at.get(&oid_raw) {
                    quarantines.push(PlannedAction {
                        action: RecoveryAction::Quarantine { object: oid, at },
                        reason: format!(
                            "{oid} planted and already deleted by suspect ({ops_desc}); pin the \
                             last version as evidence"
                        ),
                    });
                }
            }
        }
    }

    // Dirs first (shallowest first), then files: children relink into
    // directories that are back already.
    undeletes.sort_by_key(|(is_dir, depth, _)| (!*is_dir, *depth));
    // Files first, then dirs deepest-first: nothing unlinks from a
    // parent that was already removed.
    removals.sort_by_key(|(is_dir, depth, _)| (*is_dir, usize::MAX - *depth));

    let mut actions = restores_dirs;
    actions.extend(restores_files);
    actions.extend(undeletes.into_iter().map(|(_, _, a)| a));
    actions.extend(removals.into_iter().map(|(_, _, a)| a));
    actions.extend(quarantines);
    Ok(RecoveryPlan {
        intrusion_time: t,
        planned_at: drive.now(),
        actions,
    })
}

/// Executes a plan with the admin context, continuing past individual
/// failures (each is reported).
pub fn execute_plan<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    plan: &RecoveryPlan,
) -> Result<RecoveryReport, S4Error> {
    let mut report = RecoveryReport::default();
    // Undeleting gives an object a fresh id; later undeletes whose
    // parent directory was itself resurrected must relink into the new
    // directory object, not the dead one.
    let mut remap: BTreeMap<u64, ObjectId> = BTreeMap::new();
    for (idx, pa) in plan.actions.iter().enumerate() {
        let r = match &pa.action {
            RecoveryAction::RestoreContent { object, to } => {
                restore_content(drive, admin, *object, *to)
            }
            RecoveryAction::Undelete {
                object,
                to,
                parent,
                kind,
            } => {
                let parent = parent
                    .as_ref()
                    .map(|(dir, name)| (remap.get(&dir.0).copied().unwrap_or(*dir), name.clone()));
                undelete(drive, admin, *object, *to, parent.as_ref(), *kind).map(|new_oid| {
                    remap.insert(object.0, new_oid);
                    report.undeleted.push((*object, new_oid));
                })
            }
            RecoveryAction::RemovePlanted { object, parent } => {
                remove_planted(drive, admin, *object, parent.as_ref())
            }
            RecoveryAction::Quarantine { object, at } => {
                drive.op_mark_landmark(admin, *object, *at)
            }
        };
        match r {
            Ok(()) => report.applied += 1,
            Err(e) => report.failed.push((idx, e.to_string())),
        }
    }
    Ok(report)
}

/// Mutation sink for [`execute_plan_atomic`]: dispatches one request
/// (reads included, so a single closure adapts a drive, an array, or a
/// remote transport).
pub type Dispatch<'a> = &'a mut dyn FnMut(&Request) -> Result<Response, S4Error>;

/// Landmark sink for [`execute_plan_atomic`]. Landmark pinning has no
/// RPC request variant, so it travels beside the dispatch closure;
/// `at = None` pins the version current *now*.
pub type Landmark<'a> = &'a mut dyn FnMut(ObjectId, Option<SimTime>) -> Result<(), S4Error>;

/// Executes a plan issuing each action's mutations as a single
/// [`Request::Batch`] dispatch.
///
/// Routed at an `S4Array`, a multi-shard action (e.g. unlink in one
/// shard's directory + delete in another) rides the cross-shard
/// two-phase commit and lands all-or-nothing; on a lone drive the
/// batch still collapses the action into one dispatch with the
/// drive's abort-at-first-failure contract. Like [`execute_plan`],
/// execution continues past individual action failures and each is
/// reported.
pub fn execute_plan_atomic(
    dispatch: Dispatch<'_>,
    mark_landmark: Landmark<'_>,
    plan: &RecoveryPlan,
) -> Result<RecoveryReport, S4Error> {
    let mut report = RecoveryReport::default();
    // Same remap discipline as execute_plan: relink into resurrected
    // directories' fresh ids.
    let mut remap: BTreeMap<u64, ObjectId> = BTreeMap::new();
    for (idx, pa) in plan.actions.iter().enumerate() {
        let r = match &pa.action {
            RecoveryAction::RestoreContent { object, to } => {
                restore_content_atomic(&mut *dispatch, *object, *to)
            }
            RecoveryAction::Undelete {
                object,
                to,
                parent,
                kind,
            } => {
                let parent = parent
                    .as_ref()
                    .map(|(dir, name)| (remap.get(&dir.0).copied().unwrap_or(*dir), name.clone()));
                undelete_atomic(&mut *dispatch, *object, *to, parent.as_ref(), *kind).map(
                    |new_oid| {
                        remap.insert(object.0, new_oid);
                        report.undeleted.push((*object, new_oid));
                    },
                )
            }
            RecoveryAction::RemovePlanted { object, parent } => {
                remove_planted_atomic(&mut *dispatch, &mut *mark_landmark, *object, parent.as_ref())
            }
            RecoveryAction::Quarantine { object, at } => mark_landmark(*object, Some(*at)),
        };
        match r {
            Ok(()) => report.applied += 1,
            Err(e) => report.failed.push((idx, e.to_string())),
        }
    }
    Ok(report)
}

/// [`execute_plan_atomic`] adapted to a single drive's dispatch path.
pub fn execute_plan_atomic_on<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    plan: &RecoveryPlan,
) -> Result<RecoveryReport, S4Error> {
    execute_plan_atomic(
        &mut |req| drive.dispatch(admin, req),
        &mut |oid, at| drive.op_mark_landmark(admin, oid, at.unwrap_or_else(|| drive.now())),
        plan,
    )
}

/// Reads one version (attributes + full contents) through the
/// dispatch closure.
fn read_version(
    dispatch: Dispatch<'_>,
    oid: ObjectId,
    time: Option<SimTime>,
) -> Result<(ObjectAttrs, Vec<u8>), S4Error> {
    let attrs = match dispatch(&Request::GetAttr { oid, time })? {
        Response::Attrs(a) => a,
        _ => return Err(S4Error::BadRequest("expected Attrs response")),
    };
    let data = if attrs.size > 0 {
        match dispatch(&Request::Read {
            oid,
            offset: 0,
            len: attrs.size,
            time,
        })? {
            Response::Data(d) => d,
            _ => return Err(S4Error::BadRequest("expected Data response")),
        }
    } else {
        Vec::new()
    };
    Ok((attrs, data))
}

fn restore_content_atomic(
    dispatch: Dispatch<'_>,
    oid: ObjectId,
    to: SimTime,
) -> Result<(), S4Error> {
    let (attrs, data) = read_version(&mut *dispatch, oid, Some(to))?;
    let mut batch = Vec::new();
    if !data.is_empty() {
        batch.push(Request::Write {
            oid,
            offset: 0,
            data,
        });
    }
    batch.push(Request::Truncate {
        oid,
        len: attrs.size,
    });
    batch.push(Request::SetAttr {
        oid,
        attrs: attrs.opaque,
    });
    dispatch(&Request::Batch(batch)).map(|_| ())
}

/// The ACL entries of `oid`'s version at `to`, via the indexed lookup.
fn acl_entries_at(
    dispatch: Dispatch<'_>,
    oid: ObjectId,
    to: SimTime,
) -> Result<Vec<AclEntry>, S4Error> {
    let mut entries = Vec::new();
    for index in 0.. {
        match dispatch(&Request::GetAclByIndex {
            oid,
            index,
            time: Some(to),
        })? {
            Response::Acl(Some(entry)) => entries.push(entry),
            Response::Acl(None) => break,
            _ => return Err(S4Error::BadRequest("expected Acl response")),
        }
    }
    Ok(entries)
}

fn undelete_atomic(
    dispatch: Dispatch<'_>,
    oid: ObjectId,
    to: SimTime,
    parent: Option<&(ObjectId, String)>,
    kind: EntryKind,
) -> Result<ObjectId, S4Error> {
    let (attrs, data) = read_version(&mut *dispatch, oid, Some(to))?;
    let entries = acl_entries_at(&mut *dispatch, oid, to)?;
    // One resurrection batch under the LAST_CREATED placeholder, so
    // the fresh id never escapes half-initialised. The RPC surface has
    // no create-with-ACL, so the recorded entries are upserted over
    // the creation default.
    let mut batch = vec![Request::Create];
    if !data.is_empty() {
        batch.push(Request::Write {
            oid: LAST_CREATED,
            offset: 0,
            data,
        });
    }
    batch.push(Request::SetAttr {
        oid: LAST_CREATED,
        attrs: attrs.opaque,
    });
    for entry in entries {
        batch.push(Request::SetAcl {
            oid: LAST_CREATED,
            entry,
        });
    }
    let new_oid = match dispatch(&Request::Batch(batch))? {
        Response::Batch(rs) => match rs.first() {
            Some(Response::Created(o)) => *o,
            _ => return Err(S4Error::BadRequest("batch Create returned no id")),
        },
        _ => return Err(S4Error::BadRequest("expected Batch response")),
    };
    if let Some((dir, name)) = parent {
        relink_atomic(&mut *dispatch, *dir, name, Some((new_oid, kind)), Vec::new())?;
    }
    Ok(new_oid)
}

fn remove_planted_atomic(
    dispatch: Dispatch<'_>,
    mark_landmark: Landmark<'_>,
    oid: ObjectId,
    parent: Option<&(ObjectId, String)>,
) -> Result<(), S4Error> {
    // Evidence first: pin the version being removed past the window.
    mark_landmark(oid, None)?;
    if let Some((dir, name)) = parent {
        // Unlink and delete ride one batch — a failure between the two
        // can no longer leave a dangling directory entry.
        match relink_atomic(&mut *dispatch, *dir, name, None, vec![Request::Delete { oid }]) {
            Ok(()) => return Ok(()),
            // The parent directory may itself be a removed plant.
            Err(S4Error::NoSuchObject) => {}
            Err(e) => return Err(e),
        }
    }
    dispatch(&Request::Batch(vec![Request::Delete { oid }])).map(|_| ())
}

/// Rewrites one directory entry (`target = Some` upserts, `None`
/// removes) and appends `tail` so callers can make follow-on
/// mutations part of the same atomic batch.
fn relink_atomic(
    dispatch: Dispatch<'_>,
    dir: ObjectId,
    name: &str,
    target: Option<(ObjectId, EntryKind)>,
    tail: Vec<Request>,
) -> Result<(), S4Error> {
    let (_, data) = read_version(&mut *dispatch, dir, None)?;
    let mut entries = dirblob::decode(&data)?;
    entries.retain(|(n, _, _)| n != name);
    if let Some((oid, kind)) = target {
        entries.push((name.to_string(), oid.0, kind));
    }
    let blob = dirblob::encode(&entries);
    let len = blob.len() as u64;
    let mut batch = Vec::new();
    if !blob.is_empty() {
        batch.push(Request::Write {
            oid: dir,
            offset: 0,
            data: blob,
        });
    }
    batch.push(Request::Truncate { oid: dir, len });
    batch.extend(tail);
    dispatch(&Request::Batch(batch)).map(|_| ())
}

fn op_name(op: s4_core::OpKind) -> &'static str {
    use s4_core::OpKind::*;
    match op {
        Create => "Create",
        Delete => "Delete",
        Write => "Write",
        Append => "Append",
        Truncate => "Truncate",
        SetAttr => "SetAttr",
        SetAcl => "SetAcl",
        _ => "Other",
    }
}

struct NameInfo {
    path: String,
    parent: ObjectId,
    name: String,
    kind: EntryKind,
}

/// Walks every partition's tree, mapping oid -> location. The first
/// path wins if an object is linked more than once.
fn namespace_index<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    time: Option<SimTime>,
) -> Result<BTreeMap<u64, NameInfo>, S4Error> {
    let mut idx = BTreeMap::new();
    for (pname, root) in drive.op_plist(admin, time)? {
        let tree = tree_at(drive, admin, root, time)?;
        for (path, node) in &tree {
            let (dir_part, name) = match path.rfind('/') {
                Some(i) => (&path[..i], &path[i + 1..]),
                None => ("", path.as_str()),
            };
            let parent = if dir_part.is_empty() {
                root
            } else {
                tree.get(dir_part).map(|n| n.oid).unwrap_or(root)
            };
            idx.entry(node.oid.0).or_insert(NameInfo {
                path: format!("{pname}:/{path}"),
                parent,
                name: name.to_string(),
                kind: node.kind,
            });
        }
    }
    Ok(idx)
}

fn restore_content<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    oid: ObjectId,
    to: SimTime,
) -> Result<(), S4Error> {
    let attrs = drive.op_getattr(admin, oid, Some(to))?;
    let data = if attrs.size > 0 {
        drive.op_read(admin, oid, 0, attrs.size, Some(to))?
    } else {
        Vec::new()
    };
    if !data.is_empty() {
        drive.op_write(admin, oid, 0, &data)?;
    }
    drive.op_truncate(admin, oid, attrs.size)?;
    drive.op_setattr(admin, oid, attrs.opaque)?;
    Ok(())
}

/// Reconstructs the ACL table of `oid`'s version at `to` through the
/// indexed lookup interface.
fn acl_at<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    oid: ObjectId,
    to: SimTime,
) -> Result<AclTable, S4Error> {
    let mut table = AclTable::empty();
    for idx in 0.. {
        match drive.op_get_acl_by_index(admin, oid, idx, Some(to))? {
            Some(entry) => table.set(entry),
            None => break,
        }
    }
    Ok(table)
}

fn undelete<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    oid: ObjectId,
    to: SimTime,
    parent: Option<&(ObjectId, String)>,
    kind: EntryKind,
) -> Result<ObjectId, S4Error> {
    let attrs = drive.op_getattr(admin, oid, Some(to))?;
    let data = if attrs.size > 0 {
        drive.op_read(admin, oid, 0, attrs.size, Some(to))?
    } else {
        Vec::new()
    };
    let acl = acl_at(drive, admin, oid, to)?;
    let new_oid = drive.op_create(admin, Some(acl))?;
    if !data.is_empty() {
        drive.op_write(admin, new_oid, 0, &data)?;
    }
    drive.op_setattr(admin, new_oid, attrs.opaque)?;
    if let Some((dir, name)) = parent {
        relink(drive, admin, *dir, name, Some((new_oid, kind)))?;
    }
    Ok(new_oid)
}

fn remove_planted<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    oid: ObjectId,
    parent: Option<&(ObjectId, String)>,
) -> Result<(), S4Error> {
    // Evidence first: pin the version being removed past the window.
    drive.op_mark_landmark(admin, oid, drive.now())?;
    if let Some((dir, name)) = parent {
        match relink(drive, admin, *dir, name, None) {
            // The parent directory may itself be a removed plant.
            Ok(()) | Err(S4Error::NoSuchObject) => {}
            Err(e) => return Err(e),
        }
    }
    drive.op_delete(admin, oid)
}

/// Rewrites one entry of a directory object: `target = Some` upserts
/// the entry, `None` removes it.
fn relink<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    dir: ObjectId,
    name: &str,
    target: Option<(ObjectId, EntryKind)>,
) -> Result<(), S4Error> {
    let attrs = drive.op_getattr(admin, dir, None)?;
    let data = if attrs.size > 0 {
        drive.op_read(admin, dir, 0, attrs.size, None)?
    } else {
        Vec::new()
    };
    let mut entries = dirblob::decode(&data)?;
    entries.retain(|(n, _, _)| n != name);
    if let Some((oid, kind)) = target {
        entries.push((name.to_string(), oid.0, kind));
    }
    let blob = dirblob::encode(&entries);
    if !blob.is_empty() {
        drive.op_write(admin, dir, 0, &blob)?;
    }
    drive.op_truncate(admin, dir, blob.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_clock::{SimClock, SimDuration};
    use s4_core::{DriveConfig, Request, Response};
    use s4_simdisk::MemDisk;

    fn setup() -> (S4Drive<MemDisk>, RequestContext, RequestContext, RequestContext) {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        let d = S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock).unwrap();
        let admin = RequestContext::admin(ClientId(9), d.config().admin_token);
        let user = RequestContext::user(UserId(1), ClientId(1));
        let intruder = RequestContext::user(UserId(1), ClientId(66));
        (d, admin, user, intruder)
    }

    fn create(d: &S4Drive<MemDisk>, ctx: &RequestContext) -> ObjectId {
        match d.dispatch(ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn tick(d: &S4Drive<MemDisk>) {
        d.clock().advance(SimDuration::from_millis(50));
    }

    #[test]
    fn plan_classifies_all_four_shapes() {
        let (d, admin, user, intruder) = setup();
        // Pre-intrusion state, created through the audited path.
        let tampered = create(&d, &user);
        d.dispatch(&user, &Request::Write { oid: tampered, offset: 0, data: b"good".to_vec() })
            .unwrap();
        let destroyed = create(&d, &user);
        d.dispatch(&user, &Request::Write { oid: destroyed, offset: 0, data: b"keep me".to_vec() })
            .unwrap();
        tick(&d);
        let t = d.now();
        tick(&d);

        // The intrusion: tamper, destroy, plant, plant-and-delete.
        d.dispatch(&intruder, &Request::Write { oid: tampered, offset: 0, data: b"EVIL".to_vec() })
            .unwrap();
        d.dispatch(&intruder, &Request::Delete { oid: destroyed }).unwrap();
        let planted = create(&d, &intruder);
        d.dispatch(&intruder, &Request::Write { oid: planted, offset: 0, data: b"backdoor".to_vec() })
            .unwrap();
        let tool = create(&d, &intruder);
        d.dispatch(&intruder, &Request::Write { oid: tool, offset: 0, data: b"exploit".to_vec() })
            .unwrap();
        tick(&d);
        d.dispatch(&intruder, &Request::Delete { oid: tool }).unwrap();

        let plan = plan_recovery(&d, &admin, &Suspects::client(ClientId(66)), t).unwrap();
        let find = |o: ObjectId| {
            plan.actions
                .iter()
                .find(|pa| match &pa.action {
                    RecoveryAction::RestoreContent { object, .. }
                    | RecoveryAction::Undelete { object, .. }
                    | RecoveryAction::RemovePlanted { object, .. }
                    | RecoveryAction::Quarantine { object, .. } => *object == o,
                })
                .unwrap_or_else(|| panic!("no action for {o}"))
        };
        assert!(matches!(find(tampered).action, RecoveryAction::RestoreContent { .. }));
        assert!(matches!(find(destroyed).action, RecoveryAction::Undelete { .. }));
        assert!(matches!(find(planted).action, RecoveryAction::RemovePlanted { .. }));
        assert!(matches!(find(tool).action, RecoveryAction::Quarantine { .. }));

        // Execute and verify the drive state.
        let report = execute_plan(&d, &admin, &plan).unwrap();
        assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
        assert_eq!(report.applied, plan.actions.len());
        assert_eq!(d.op_read(&user, tampered, 0, 4, None).unwrap(), b"good");
        assert!(d.op_getattr(&user, planted, None).is_err(), "planted object removed");
        let (_, new_oid) = report.undeleted[0];
        assert_eq!(d.op_read(&user, new_oid, 0, 7, None).unwrap(), b"keep me");
        // The quarantined tool's last version is pinned as a landmark.
        let pins = d.landmarks(&admin, tool).unwrap();
        assert_eq!(pins.len(), 1);
        // And the removed planted object is pinned too (evidence).
        assert_eq!(d.landmarks(&admin, planted).unwrap().len(), 1);
    }

    #[test]
    fn atomic_executor_restores_all_four_shapes_via_batches() {
        let (d, admin, user, intruder) = setup();
        let tampered = create(&d, &user);
        d.dispatch(&user, &Request::Write { oid: tampered, offset: 0, data: b"good".to_vec() })
            .unwrap();
        let destroyed = create(&d, &user);
        d.dispatch(&user, &Request::Write { oid: destroyed, offset: 0, data: b"keep me".to_vec() })
            .unwrap();
        tick(&d);
        let t = d.now();
        tick(&d);
        d.dispatch(&intruder, &Request::Write { oid: tampered, offset: 0, data: b"EVIL".to_vec() })
            .unwrap();
        d.dispatch(&intruder, &Request::Delete { oid: destroyed }).unwrap();
        let planted = create(&d, &intruder);
        d.dispatch(&intruder, &Request::Write { oid: planted, offset: 0, data: b"backdoor".to_vec() })
            .unwrap();
        let tool = create(&d, &intruder);
        tick(&d);
        d.dispatch(&intruder, &Request::Delete { oid: tool }).unwrap();

        let plan = plan_recovery(&d, &admin, &Suspects::client(ClientId(66)), t).unwrap();
        // Count batch dispatches: every action's mutations must arrive
        // as a single Request::Batch, never as loose writes.
        let mut batches = 0usize;
        let report = execute_plan_atomic(
            &mut |req| {
                if matches!(req, Request::Batch(_)) {
                    batches += 1;
                } else {
                    assert!(
                        !req.mutates(),
                        "atomic executor issued a loose mutation: {req:?}"
                    );
                }
                d.dispatch(&admin, req)
            },
            &mut |oid, at| d.op_mark_landmark(&admin, oid, at.unwrap_or_else(|| d.now())),
            &plan,
        )
        .unwrap();
        assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
        assert_eq!(report.applied, plan.actions.len());
        assert!(batches >= 3, "restore/undelete/remove each batch once");
        assert_eq!(d.op_read(&user, tampered, 0, 4, None).unwrap(), b"good");
        assert!(d.op_getattr(&user, planted, None).is_err(), "planted object removed");
        let (_, new_oid) = report.undeleted[0];
        assert_eq!(d.op_read(&user, new_oid, 0, 7, None).unwrap(), b"keep me");
        assert_eq!(d.landmarks(&admin, tool).unwrap().len(), 1);
        assert_eq!(d.landmarks(&admin, planted).unwrap().len(), 1);
    }

    #[test]
    fn innocent_activity_is_not_planned_against() {
        let (d, admin, user, _) = setup();
        let mine = create(&d, &user);
        tick(&d);
        let t = d.now();
        tick(&d);
        // Post-T activity by the honest client only.
        d.dispatch(&user, &Request::Write { oid: mine, offset: 0, data: b"work".to_vec() })
            .unwrap();
        let plan = plan_recovery(&d, &admin, &Suspects::client(ClientId(66)), t).unwrap();
        assert!(plan.actions.is_empty());
    }
}
