//! Activity aggregation over the audit stream.
//!
//! Shared accounting used by both the forensic reports and the
//! detection rules: per-principal summaries ([`ActivityTimeline`]) and
//! the per-object append-only ledger ([`ObjectProfile`]) that the
//! log-scrub and ransomware rules build on.

use std::collections::{BTreeMap, BTreeSet};

use s4_clock::SimTime;
use s4_core::{AuditRecord, ClientId, OpKind, UserId};

/// True for operations that create a new version of the target object.
pub fn is_mutation(op: OpKind) -> bool {
    matches!(
        op,
        OpKind::Create
            | OpKind::Delete
            | OpKind::Write
            | OpKind::Append
            | OpKind::Truncate
            | OpKind::SetAttr
            | OpKind::SetAcl
    )
}

/// Bytes of new data a record carries (per the audit arg conventions:
/// `Write(offset, len)`, `Append(len, _)`, `SetAttr(len, _)`).
pub fn write_bytes(rec: &AuditRecord) -> u64 {
    match rec.op {
        OpKind::Write => rec.arg2,
        OpKind::Append | OpKind::SetAttr => rec.arg1,
        _ => 0,
    }
}

/// Everything one `(user, client)` pair did, in summary.
#[derive(Clone, Debug)]
pub struct PrincipalActivity {
    /// Acting user.
    pub user: UserId,
    /// Originating client machine.
    pub client: ClientId,
    /// First and last request times.
    pub first_seen: SimTime,
    /// Last request time.
    pub last_seen: SimTime,
    /// Total requests.
    pub requests: u64,
    /// Requests the drive refused.
    pub denied: u64,
    /// Total bytes written (writes + appends + attr blobs).
    pub bytes_written: u64,
    /// Successful request count per operation kind (keyed by wire code).
    pub ops: BTreeMap<u8, u64>,
    /// Objects this principal mutated.
    pub objects_modified: BTreeSet<u64>,
    /// Objects this principal read (data or attributes).
    pub objects_read: BTreeSet<u64>,
}

impl PrincipalActivity {
    fn new(rec: &AuditRecord) -> Self {
        PrincipalActivity {
            user: rec.user,
            client: rec.client,
            first_seen: rec.time,
            last_seen: rec.time,
            requests: 0,
            denied: 0,
            bytes_written: 0,
            ops: BTreeMap::new(),
            objects_modified: BTreeSet::new(),
            objects_read: BTreeSet::new(),
        }
    }
}

/// Per-principal activity summaries over an audit interval — the
/// "per-client and per-user timeline" view an administrator starts
/// diagnosis from.
#[derive(Clone, Debug, Default)]
pub struct ActivityTimeline {
    /// One summary per `(user, client)` pair, in id order.
    pub principals: BTreeMap<(u32, u32), PrincipalActivity>,
}

impl ActivityTimeline {
    /// Aggregates a full record slice.
    pub fn build(records: &[AuditRecord]) -> Self {
        let mut t = ActivityTimeline::default();
        for r in records {
            t.observe(r);
        }
        t
    }

    /// Folds one record into the summaries.
    pub fn observe(&mut self, rec: &AuditRecord) {
        let p = self
            .principals
            .entry((rec.user.0, rec.client.0))
            .or_insert_with(|| PrincipalActivity::new(rec));
        p.requests += 1;
        p.last_seen = rec.time;
        if !rec.ok {
            p.denied += 1;
            return;
        }
        *p.ops.entry(rec.op as u8).or_insert(0) += 1;
        p.bytes_written += write_bytes(rec);
        if rec.object.0 != 0 {
            if is_mutation(rec.op) {
                p.objects_modified.insert(rec.object.0);
            } else if matches!(rec.op, OpKind::Read | OpKind::GetAttr) {
                p.objects_read.insert(rec.object.0);
            }
        }
    }
}

/// What one mutation did to an object's append-only ledger.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProfileEvent {
    /// Data added strictly at or past the high-water mark.
    Appended,
    /// Existing bytes overwritten or truncated away. `first` is true on
    /// the first destructive op after the object had qualified as
    /// append-only — the alarm condition.
    Destructive {
        /// First violation of an established append-only pattern.
        first: bool,
    },
    /// Metadata-only or otherwise neutral.
    Other,
}

/// Streaming append-only ledger for one object, fed from audit records.
///
/// An object *qualifies* as append-only once it has seen
/// `min_appends` strictly-appending mutations with no destructive op;
/// the first destructive op on a qualified object is the log-scrub
/// signal. Directory blobs never qualify: the file server rewrites
/// their block 0 (the entry count) on every update after the first.
#[derive(Clone, Debug, Default)]
pub struct ObjectProfile {
    /// High-water mark: the largest end offset ever written.
    pub watermark: u64,
    /// Count of strictly-appending mutations so far.
    pub appends: u32,
    /// Whether any overwrite/shrink has been seen.
    pub destructive: bool,
}

impl ObjectProfile {
    /// Folds one successful mutation in; `min_appends` is the
    /// qualification threshold.
    pub fn observe(&mut self, rec: &AuditRecord, min_appends: u32) -> ProfileEvent {
        let qualified = self.appends >= min_appends && !self.destructive;
        match rec.op {
            OpKind::Write => {
                let (off, len) = (rec.arg1, rec.arg2);
                if off >= self.watermark {
                    self.watermark = off + len;
                    self.appends += 1;
                    ProfileEvent::Appended
                } else {
                    let first = qualified;
                    self.destructive = true;
                    self.watermark = self.watermark.max(off + len);
                    ProfileEvent::Destructive { first }
                }
            }
            OpKind::Append => {
                self.watermark += rec.arg1;
                self.appends += 1;
                ProfileEvent::Appended
            }
            OpKind::Truncate => {
                let new_len = rec.arg1;
                if new_len < self.watermark {
                    let first = qualified;
                    self.destructive = true;
                    self.watermark = new_len;
                    ProfileEvent::Destructive { first }
                } else {
                    self.watermark = new_len;
                    ProfileEvent::Other
                }
            }
            _ => ProfileEvent::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_core::ObjectId;

    fn rec(op: OpKind, ok: bool, object: u64, arg1: u64, arg2: u64) -> AuditRecord {
        AuditRecord {
            time: SimTime::from_secs(1),
            user: UserId(1),
            client: ClientId(1),
            op,
            ok,
            object: ObjectId(object),
            arg1,
            arg2,
        }
    }

    #[test]
    fn timeline_aggregates_per_principal() {
        let records = vec![
            rec(OpKind::Create, true, 10, 0, 0),
            rec(OpKind::Write, true, 10, 0, 100),
            rec(OpKind::Read, true, 10, 0, 100),
            rec(OpKind::SetAcl, false, 10, 0, 0),
        ];
        let t = ActivityTimeline::build(&records);
        let p = &t.principals[&(1, 1)];
        assert_eq!(p.requests, 4);
        assert_eq!(p.denied, 1);
        assert_eq!(p.bytes_written, 100);
        assert!(p.objects_modified.contains(&10));
        assert!(p.objects_read.contains(&10));
    }

    #[test]
    fn profile_qualifies_then_flags_violation() {
        let mut p = ObjectProfile::default();
        // Two appends (a fresh write at the watermark counts).
        assert_eq!(p.observe(&rec(OpKind::Write, true, 5, 0, 30), 2), ProfileEvent::Appended);
        assert_eq!(p.observe(&rec(OpKind::Append, true, 5, 20, 0), 2), ProfileEvent::Appended);
        assert_eq!(p.watermark, 50);
        // Truncating below the watermark is the first violation.
        assert_eq!(
            p.observe(&rec(OpKind::Truncate, true, 5, 10, 0), 2),
            ProfileEvent::Destructive { first: true }
        );
        // Later destruction is no longer "first".
        assert_eq!(
            p.observe(&rec(OpKind::Write, true, 5, 0, 4), 2),
            ProfileEvent::Destructive { first: false }
        );
    }

    #[test]
    fn profile_never_qualifies_after_early_overwrite() {
        let mut p = ObjectProfile::default();
        // Directory-blob shape: rewrite block 0 on every update.
        p.observe(&rec(OpKind::Write, true, 7, 0, 40), 2);
        assert_eq!(
            p.observe(&rec(OpKind::Write, true, 7, 0, 60), 2),
            ProfileEvent::Destructive { first: false }
        );
        // Destruction later never reports `first: true`.
        p.observe(&rec(OpKind::Append, true, 7, 10, 0), 2);
        p.observe(&rec(OpKind::Append, true, 7, 10, 0), 2);
        assert_eq!(
            p.observe(&rec(OpKind::Truncate, true, 7, 0, 0), 2),
            ProfileEvent::Destructive { first: false }
        );
    }
}
