//! Structured alerts and their wire encoding.
//!
//! Detectors raise [`Alert`]s; when running online inside the drive the
//! encoded form is persisted to the reserved alert object (see
//! `s4_core::alert`), so the format must round-trip byte-exactly.

use s4_clock::SimTime;
use s4_core::{ClientId, ObjectId, S4Error, UserId};

/// How bad it is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum Severity {
    /// Noteworthy but expected to be benign on its own.
    Info = 1,
    /// Suspicious; warrants a look at the forensic timeline.
    Warning = 2,
    /// Strong intrusion signal; start the §2 recovery procedure.
    Critical = 3,
}

impl Severity {
    fn from_u8(v: u8) -> Result<Severity, S4Error> {
        match v {
            1 => Ok(Severity::Info),
            2 => Ok(Severity::Warning),
            3 => Ok(Severity::Critical),
            _ => Err(S4Error::BadRequest("alert severity")),
        }
    }
}

/// One detector finding: which rule fired, on whose request, against
/// which object, and a human-readable explanation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Alert {
    /// Time of the triggering request (drive clock).
    pub time: SimTime,
    /// Escalation level.
    pub severity: Severity,
    /// Name of the rule that fired (e.g. `append-only-violation`).
    pub rule: String,
    /// User of the triggering request.
    pub user: UserId,
    /// Client machine of the triggering request.
    pub client: ClientId,
    /// Object concerned (0 when the alert is not object-specific).
    pub object: ObjectId,
    /// Free-form diagnosis.
    pub message: String,
}

impl Alert {
    /// Binary encoding: fixed header, then length-prefixed rule and
    /// message strings.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(29 + self.rule.len() + self.message.len());
        out.push(self.severity as u8);
        out.extend_from_slice(&self.time.as_micros().to_le_bytes());
        out.extend_from_slice(&self.user.0.to_le_bytes());
        out.extend_from_slice(&self.client.0.to_le_bytes());
        out.extend_from_slice(&self.object.0.to_le_bytes());
        out.extend_from_slice(&(self.rule.len() as u16).to_le_bytes());
        out.extend_from_slice(self.rule.as_bytes());
        out.extend_from_slice(&(self.message.len() as u16).to_le_bytes());
        out.extend_from_slice(self.message.as_bytes());
        out
    }

    /// Decodes one alert blob (as stored in the alert object).
    pub fn decode(buf: &[u8]) -> Result<Alert, S4Error> {
        if buf.len() < 27 {
            return Err(S4Error::BadRequest("alert blob truncated"));
        }
        let severity = Severity::from_u8(buf[0])?;
        let time = SimTime::from_micros(u64::from_le_bytes(buf[1..9].try_into().unwrap()));
        let user = UserId(u32::from_le_bytes(buf[9..13].try_into().unwrap()));
        let client = ClientId(u32::from_le_bytes(buf[13..17].try_into().unwrap()));
        let object = ObjectId(u64::from_le_bytes(buf[17..25].try_into().unwrap()));
        let mut pos = 25;
        let mut take_str = |buf: &[u8]| -> Result<String, S4Error> {
            if pos + 2 > buf.len() {
                return Err(S4Error::BadRequest("alert string truncated"));
            }
            let n = u16::from_le_bytes(buf[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2;
            if pos + n > buf.len() {
                return Err(S4Error::BadRequest("alert string truncated"));
            }
            let s = String::from_utf8(buf[pos..pos + n].to_vec())
                .map_err(|_| S4Error::BadRequest("alert string utf8"))?;
            pos += n;
            Ok(s)
        };
        let rule = take_str(buf)?;
        let message = take_str(buf)?;
        Ok(Alert {
            time,
            severity,
            rule,
            user,
            client,
            object,
            message,
        })
    }
}

impl core::fmt::Display for Alert {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{:?}] {} at {}: user={} client={} {} — {}",
            self.severity, self.rule, self.time, self.user.0, self.client.0, self.object,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Alert {
        Alert {
            time: SimTime::from_micros(123_456),
            severity: Severity::Critical,
            rule: "append-only-violation".into(),
            user: UserId(1),
            client: ClientId(66),
            object: ObjectId(42),
            message: "auth.log truncated below its watermark".into(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let a = sample();
        assert_eq!(Alert::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Alert::decode(&[]).is_err());
        assert!(Alert::decode(&[9u8; 27]).is_err()); // bad severity
        let mut enc = sample().encode();
        enc.truncate(enc.len() - 1); // cut the message short
        assert!(Alert::decode(&enc).is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("append-only-violation"));
        assert!(s.contains("client=66"));
    }
}
