//! The audit log (§4.2.3).
//!
//! "S4 maintains an append-only audit log of all requests. This log is
//! implemented as a reserved object within the drive that cannot be
//! modified except by the drive itself. ... Since the audit log may only
//! be written by the drive front end, it need not be versioned."
//!
//! Records accumulate in a buffer; whole 4 KiB blocks are appended to the
//! log alongside data blocks at sync time, which is exactly what produces
//! the Figure 6 effect (audit blocks interleave with data in segments,
//! reducing read locality of the files created around them).

use s4_clock::SimTime;
use s4_lfs::{BlockAddr, BLOCK_SIZE};

use crate::ids::{ClientId, ObjectId, UserId};
use crate::{Result, S4Error};

/// Operation classification recorded in audit records (mirrors Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum OpKind {
    Create = 1,
    Delete = 2,
    Read = 3,
    Write = 4,
    Append = 5,
    Truncate = 6,
    GetAttr = 7,
    SetAttr = 8,
    GetAclByUser = 9,
    GetAclByIndex = 10,
    SetAcl = 11,
    PCreate = 12,
    PDelete = 13,
    PList = 14,
    PMount = 15,
    Sync = 16,
    Flush = 17,
    FlushO = 18,
    SetWindow = 19,
    FlushAlerts = 20,
    FlushTraces = 21,
}

impl OpKind {
    /// Parses the on-disk representation.
    pub fn from_u8(v: u8) -> Result<OpKind> {
        if (1..=21).contains(&v) {
            // SAFETY-free mapping: match keeps this total.
            Ok(match v {
                1 => OpKind::Create,
                2 => OpKind::Delete,
                3 => OpKind::Read,
                4 => OpKind::Write,
                5 => OpKind::Append,
                6 => OpKind::Truncate,
                7 => OpKind::GetAttr,
                8 => OpKind::SetAttr,
                9 => OpKind::GetAclByUser,
                10 => OpKind::GetAclByIndex,
                11 => OpKind::SetAcl,
                12 => OpKind::PCreate,
                13 => OpKind::PDelete,
                14 => OpKind::PList,
                15 => OpKind::PMount,
                16 => OpKind::Sync,
                17 => OpKind::Flush,
                18 => OpKind::FlushO,
                19 => OpKind::SetWindow,
                20 => OpKind::FlushAlerts,
                _ => OpKind::FlushTraces,
            })
        } else {
            Err(S4Error::BadRequest("audit op kind"))
        }
    }
}

/// One audit record: who did what to which object, when, and whether it
/// succeeded. Fixed 40-byte encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuditRecord {
    /// When the request was processed.
    pub time: SimTime,
    /// Requesting user.
    pub user: UserId,
    /// Originating client machine.
    pub client: ClientId,
    /// Operation performed.
    pub op: OpKind,
    /// Whether the drive executed it (false = denied/failed).
    pub ok: bool,
    /// Target object (0 when not object-directed).
    pub object: ObjectId,
    /// First argument (offset / length / window, op-specific).
    pub arg1: u64,
    /// Second argument (length / time bound, op-specific).
    pub arg2: u64,
}

/// Encoded size of one record (8 time + 4 user + 4 client + 1 op + 1 ok +
/// 6 pad + 8 object + 8 arg1 + 8 arg2).
pub const RECORD_BYTES: usize = 48;

impl AuditRecord {
    /// Appends the binary encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.time.as_micros().to_le_bytes());
        out.extend_from_slice(&self.user.0.to_le_bytes());
        out.extend_from_slice(&self.client.0.to_le_bytes());
        out.push(self.op as u8);
        out.push(self.ok as u8);
        out.extend_from_slice(&[0u8; 6]); // pad to 8-byte alignment
        out.extend_from_slice(&self.object.0.to_le_bytes());
        out.extend_from_slice(&self.arg1.to_le_bytes());
        out.extend_from_slice(&self.arg2.to_le_bytes());
    }

    /// Decodes one record.
    pub fn decode(buf: &[u8]) -> Result<AuditRecord> {
        if buf.len() < RECORD_BYTES {
            return Err(S4Error::BadRequest("audit record truncated"));
        }
        Ok(AuditRecord {
            time: SimTime::from_micros(u64::from_le_bytes(buf[0..8].try_into().unwrap())),
            user: UserId(u32::from_le_bytes(buf[8..12].try_into().unwrap())),
            client: ClientId(u32::from_le_bytes(buf[12..16].try_into().unwrap())),
            op: OpKind::from_u8(buf[16])?,
            ok: buf[17] != 0,
            object: ObjectId(u64::from_le_bytes(buf[24..32].try_into().unwrap())),
            arg1: u64::from_le_bytes(buf[32..40].try_into().unwrap()),
            arg2: u64::from_le_bytes(buf[40..48].try_into().unwrap()),
        })
    }
}

/// Drive-internal state of the audit object: the addresses of its full
/// blocks plus the in-memory tail buffer.
#[derive(Clone, Debug, Default)]
pub struct AuditState {
    /// Addresses of the full audit blocks, in append order.
    pub blocks: Vec<BlockAddr>,
    /// Records buffered toward the next full block.
    pub pending: Vec<u8>,
    /// Total records ever appended.
    pub total_records: u64,
}

impl AuditState {
    /// Appends one record to the buffer; returns any full 4 KiB block
    /// payloads now ready to be written to the log.
    pub fn push(&mut self, rec: &AuditRecord) -> Vec<Vec<u8>> {
        rec.encode_into(&mut self.pending);
        self.total_records += 1;
        let mut out = Vec::new();
        while self.pending.len() >= usable_block_bytes() {
            let rest = self.pending.split_off(usable_block_bytes());
            let block = std::mem::replace(&mut self.pending, rest);
            out.push(block);
        }
        out
    }

    /// Serializes the durable part (block list + totals) for the anchor
    /// payload. The pending tail is volatile by design (§5.1.4 models one
    /// audit block write per ~hundred operations, not per operation).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.blocks.len() * 8);
        out.extend_from_slice(&self.total_records.to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for b in &self.blocks {
            out.extend_from_slice(&b.0.to_le_bytes());
        }
        out
    }

    /// Deserializes from anchor payload, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<AuditState> {
        if *pos + 12 > buf.len() {
            return Err(S4Error::BadRequest("audit state truncated"));
        }
        let total_records = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
        let n = u32::from_le_bytes(buf[*pos + 8..*pos + 12].try_into().unwrap()) as usize;
        *pos += 12;
        if *pos + n * 8 > buf.len() {
            return Err(S4Error::BadRequest("audit block list truncated"));
        }
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(BlockAddr(u64::from_le_bytes(
                buf[*pos..*pos + 8].try_into().unwrap(),
            )));
            *pos += 8;
        }
        Ok(AuditState {
            blocks,
            pending: Vec::new(),
            total_records,
        })
    }

    /// Decodes every record in an audit block payload. Blocks flushed at
    /// anchor time may be partially filled; zero padding (op byte 0 —
    /// never a valid [`OpKind`]) terminates the scan.
    pub fn decode_block(payload: &[u8]) -> Result<Vec<AuditRecord>> {
        let mut out = Vec::new();
        let usable = usable_block_bytes().min(payload.len());
        let mut off = 0;
        while off + RECORD_BYTES <= usable {
            if payload[off + 16] == 0 {
                break; // padding
            }
            out.push(AuditRecord::decode(&payload[off..off + RECORD_BYTES])?);
            off += RECORD_BYTES;
        }
        Ok(out)
    }

    /// Takes the buffered (partial) tail as a block payload, if any —
    /// called at anchor time so audit records survive restarts.
    pub fn take_pending_block(&mut self) -> Option<Vec<u8>> {
        if self.pending.is_empty() {
            return None;
        }
        Some(std::mem::take(&mut self.pending))
    }
}

/// Bytes of a block usable for whole records.
fn usable_block_bytes() -> usize {
    (BLOCK_SIZE / RECORD_BYTES) * RECORD_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> AuditRecord {
        AuditRecord {
            time: SimTime::from_micros(i),
            user: UserId(i as u32),
            client: ClientId(7),
            op: OpKind::Write,
            ok: i.is_multiple_of(2),
            object: ObjectId(100 + i),
            arg1: i * 4096,
            arg2: 4096,
        }
    }

    #[test]
    fn record_round_trip() {
        let mut buf = Vec::new();
        rec(5).encode_into(&mut buf);
        assert_eq!(AuditRecord::decode(&buf).unwrap(), rec(5));
    }

    #[test]
    fn push_emits_full_blocks_only() {
        let mut st = AuditState::default();
        let per_block = usable_block_bytes() / RECORD_BYTES;
        let mut emitted = Vec::new();
        for i in 0..(per_block as u64 * 2 + 3) {
            emitted.extend(st.push(&rec(i)));
        }
        assert_eq!(emitted.len(), 2);
        assert_eq!(st.total_records, per_block as u64 * 2 + 3);
        assert!(!st.pending.is_empty());
        // Each emitted block decodes back to the right records.
        let first = AuditState::decode_block(&emitted[0]).unwrap();
        assert_eq!(first.len(), per_block);
        assert_eq!(first[0], rec(0));
        let second = AuditState::decode_block(&emitted[1]).unwrap();
        assert_eq!(second[0], rec(per_block as u64));
    }

    #[test]
    fn state_encode_decode() {
        let mut st = AuditState {
            blocks: vec![BlockAddr(5), BlockAddr(9)],
            pending: vec![1, 2, 3],
            total_records: 42,
        };
        let enc = st.encode();
        let mut pos = 0;
        let d = AuditState::decode_from(&enc, &mut pos).unwrap();
        assert_eq!(d.blocks, st.blocks);
        assert_eq!(d.total_records, 42);
        assert!(d.pending.is_empty(), "pending tail is volatile");
        st.pending.clear();
        assert_eq!(pos, enc.len());
    }

    #[test]
    fn record_stream_round_trips_across_block_boundaries() {
        // Push 2½ blocks of records, then reassemble the whole stream
        // from the emitted full blocks plus the anchored pending tail:
        // nothing lost, nothing reordered, nothing altered at the seams.
        let mut st = AuditState::default();
        let per_block = usable_block_bytes() / RECORD_BYTES;
        let total = per_block as u64 * 2 + per_block as u64 / 2;
        let mut blocks = Vec::new();
        for i in 0..total {
            blocks.extend(st.push(&rec(i)));
        }
        blocks.extend(st.take_pending_block());
        assert!(st.take_pending_block().is_none());
        let decoded: Vec<AuditRecord> = blocks
            .iter()
            .map(|b| AuditState::decode_block(b).unwrap())
            .collect::<Vec<_>>()
            .concat();
        assert_eq!(decoded.len() as u64, total);
        for (i, d) in decoded.iter().enumerate() {
            assert_eq!(*d, rec(i as u64), "record {i} damaged crossing blocks");
        }
    }

    #[test]
    fn decode_block_rejects_corruption_without_panicking() {
        let mut st = AuditState::default();
        let mut payload = Vec::new();
        for i in 0..3 {
            st.push(&rec(i));
        }
        payload.extend(st.take_pending_block().unwrap());

        // Corrupt the op byte of the middle record: clean error, no panic.
        let mut bad = payload.clone();
        bad[RECORD_BYTES + 16] = 250;
        assert_eq!(
            AuditState::decode_block(&bad),
            Err(S4Error::BadRequest("audit op kind"))
        );

        // An op byte of zero is padding: the scan stops, keeping only the
        // records before it.
        let mut padded = payload.clone();
        padded[2 * RECORD_BYTES + 16] = 0;
        assert_eq!(AuditState::decode_block(&padded).unwrap().len(), 2);

        // Truncated payloads (a torn write) and arbitrary garbage decode
        // to whatever whole valid records they contain, never panicking.
        for cut in 0..payload.len() {
            let _ = AuditState::decode_block(&payload[..cut]);
        }
        let garbage: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i * 37 + 11) as u8).collect();
        let _ = AuditState::decode_block(&garbage);
        // Oversized payloads are clamped to the usable region.
        let big = vec![0u8; BLOCK_SIZE * 3];
        assert_eq!(AuditState::decode_block(&big).unwrap().len(), 0);
    }

    #[test]
    fn op_kind_round_trip() {
        for v in 1..=21u8 {
            assert_eq!(OpKind::from_u8(v).unwrap() as u8, v);
        }
        assert!(OpKind::from_u8(0).is_err());
        assert!(OpKind::from_u8(22).is_err());
    }

    #[test]
    fn roughly_85_records_fit_per_block() {
        // Sanity check the §5.1.4 shape: audit costs one block write per
        // tens-of-operations, not per operation.
        let per_block = usable_block_bytes() / RECORD_BYTES;
        assert!((80..=90).contains(&per_block), "per_block = {per_block}");
    }
}
