//! The S4 RPC interface (Table 1 of the paper) and its wire codec.
//!
//! Every operation in the paper's Table 1 is represented: the read-type
//! operations (`Read`, `GetAttr`, `GetACLByUser`, `GetACLByIndex`,
//! `PList`, `PMount`) carry an optional `time` parameter selecting "the
//! version of the object that was most current at the time specified",
//! and all modifications create new versions without affecting previous
//! ones. [`S4Drive::dispatch`] authenticates, executes, and audits a
//! request; the binary codec lets transports (loopback or TCP) ship
//! requests without caring about their contents.

use s4_clock::{SimDuration, SimTime};
use s4_simdisk::BlockDev;

use crate::acl::{AclEntry, Perm};
use crate::audit::{AuditRecord, OpKind};
use crate::drive::{ObjectAttrs, S4Drive};
use crate::ids::{ObjectId, RequestContext, UserId};
use crate::{Result, S4Error};

/// A request to the drive (Table 1).
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Request {
    /// Create an object.
    Create,
    /// Delete an object (versions remain in the history pool).
    Delete { oid: ObjectId },
    /// Read data; `time` selects a historical version.
    Read {
        oid: ObjectId,
        offset: u64,
        len: u64,
        time: Option<SimTime>,
    },
    /// Write data at an offset.
    Write {
        oid: ObjectId,
        offset: u64,
        data: Vec<u8>,
    },
    /// Append data at the end of the object.
    Append { oid: ObjectId, data: Vec<u8> },
    /// Truncate the object to a length.
    Truncate { oid: ObjectId, len: u64 },
    /// Get attributes (S4-specific and opaque); supports time-based access.
    GetAttr {
        oid: ObjectId,
        time: Option<SimTime>,
    },
    /// Set the opaque attributes.
    SetAttr { oid: ObjectId, attrs: Vec<u8> },
    /// Get an ACL entry by user; supports time-based access.
    GetAclByUser {
        oid: ObjectId,
        user: UserId,
        time: Option<SimTime>,
    },
    /// Get an ACL entry by index; supports time-based access.
    GetAclByIndex {
        oid: ObjectId,
        index: u32,
        time: Option<SimTime>,
    },
    /// Set an ACL entry.
    SetAcl { oid: ObjectId, entry: AclEntry },
    /// Create a partition (name → ObjectID association).
    PCreate { name: String, oid: ObjectId },
    /// Delete a partition association.
    PDelete { name: String },
    /// List partitions; supports time-based access.
    PList { time: Option<SimTime> },
    /// Resolve a partition name; supports time-based access.
    PMount { name: String, time: Option<SimTime> },
    /// Sync the entire cache to disk.
    Sync,
    /// Admin: remove all versions of all objects between two times.
    Flush { from: SimTime, to: SimTime },
    /// Admin: remove versions of one object between two times.
    FlushO {
        oid: ObjectId,
        from: SimTime,
        to: SimTime,
    },
    /// Admin: adjust the guaranteed detection window.
    SetWindow { window: SimDuration },
    /// Admin: truncate alert-object blocks strictly older than the
    /// detection window (retention for the append-only alert stream).
    FlushAlerts,
    /// Admin: truncate flight-recorder (trace) blocks strictly older
    /// than the detection window.
    FlushTraces,
    /// Several operations in one round trip (§4.1.2: "the drive also
    /// supports batching of setattr, getattr, and sync operations with
    /// create, read, write, and append operations"). Sub-requests run in
    /// order; each is audited individually; the first failure aborts the
    /// rest (earlier effects remain, as with separate RPCs). Within a
    /// batch, [`LAST_CREATED`] as an ObjectID refers to the object made
    /// by the batch's most recent `Create`.
    Batch(Vec<Request>),
}

/// Placeholder ObjectID usable inside a [`Request::Batch`]: "the object
/// created by the most recent Create in this batch".
pub const LAST_CREATED: ObjectId = ObjectId(u64::MAX);

/// A successful response.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Response {
    /// New object's identifier.
    Created(ObjectId),
    /// Generic success.
    Ok,
    /// Read data.
    Data(Vec<u8>),
    /// New object size after an append.
    NewSize(u64),
    /// Attributes.
    Attrs(ObjectAttrs),
    /// ACL lookup result (None = no entry).
    Acl(Option<AclEntry>),
    /// Partition listing.
    Partitions(Vec<(String, ObjectId)>),
    /// Resolved partition object.
    Mounted(ObjectId),
    /// Responses of a batch's sub-requests, in order.
    Batch(Vec<Response>),
}

impl Request {
    /// The audit classification of this request.
    pub fn op_kind(&self) -> OpKind {
        match self {
            Request::Create => OpKind::Create,
            Request::Delete { .. } => OpKind::Delete,
            Request::Read { .. } => OpKind::Read,
            Request::Write { .. } => OpKind::Write,
            Request::Append { .. } => OpKind::Append,
            Request::Truncate { .. } => OpKind::Truncate,
            Request::GetAttr { .. } => OpKind::GetAttr,
            Request::SetAttr { .. } => OpKind::SetAttr,
            Request::GetAclByUser { .. } => OpKind::GetAclByUser,
            Request::GetAclByIndex { .. } => OpKind::GetAclByIndex,
            Request::SetAcl { .. } => OpKind::SetAcl,
            Request::PCreate { .. } => OpKind::PCreate,
            Request::PDelete { .. } => OpKind::PDelete,
            Request::PList { .. } => OpKind::PList,
            Request::PMount { .. } => OpKind::PMount,
            Request::Sync => OpKind::Sync,
            Request::Flush { .. } => OpKind::Flush,
            Request::FlushO { .. } => OpKind::FlushO,
            Request::SetWindow { .. } => OpKind::SetWindow,
            Request::FlushAlerts => OpKind::FlushAlerts,
            Request::FlushTraces => OpKind::FlushTraces,
            // Batches are audited per sub-request, not as a whole.
            Request::Batch(_) => OpKind::Sync,
        }
    }

    /// Target object, for auditing (0 when not object-directed).
    pub fn target(&self) -> ObjectId {
        match self {
            Request::Delete { oid }
            | Request::Read { oid, .. }
            | Request::Write { oid, .. }
            | Request::Append { oid, .. }
            | Request::Truncate { oid, .. }
            | Request::GetAttr { oid, .. }
            | Request::SetAttr { oid, .. }
            | Request::GetAclByUser { oid, .. }
            | Request::GetAclByIndex { oid, .. }
            | Request::SetAcl { oid, .. }
            | Request::PCreate { oid, .. }
            | Request::FlushO { oid, .. } => *oid,
            _ => ObjectId(0),
        }
    }

    /// Audit arguments `(arg1, arg2)` for this request.
    pub fn audit_args(&self) -> (u64, u64) {
        match self {
            Request::Read { offset, len, .. } => (*offset, *len),
            Request::Write { offset, data, .. } => (*offset, data.len() as u64),
            Request::Append { data, .. } => (data.len() as u64, 0),
            Request::Truncate { len, .. } => (*len, 0),
            Request::SetAttr { attrs, .. } => (attrs.len() as u64, 0),
            Request::Flush { from, to } | Request::FlushO { from, to, .. } => {
                (from.as_micros(), to.as_micros())
            }
            Request::SetWindow { window } => (window.as_micros(), 0),
            _ => (0, 0),
        }
    }

    /// True if this request can change drive state. Redundancy layers
    /// use this to decide which requests must reach every replica
    /// (mutations) versus any one live replica (pure reads). `Batch` is
    /// conservatively a mutation — its sub-requests usually include one.
    pub fn mutates(&self) -> bool {
        !matches!(
            self,
            Request::Read { .. }
                | Request::GetAttr { .. }
                | Request::GetAclByUser { .. }
                | Request::GetAclByIndex { .. }
                | Request::PList { .. }
                | Request::PMount { .. }
        )
    }

    /// Approximate request size on the wire, for network cost models.
    pub fn wire_size(&self) -> usize {
        let body = match self {
            Request::Write { data, .. } | Request::Append { data, .. } => data.len(),
            Request::SetAttr { attrs, .. } => attrs.len(),
            Request::PCreate { name, .. }
            | Request::PDelete { name }
            | Request::PMount { name, .. } => name.len(),
            Request::Batch(reqs) => reqs.iter().map(|r| r.wire_size()).sum(),
            _ => 0,
        };
        48 + body
    }
}

impl Response {
    /// Approximate response size on the wire, for network cost models.
    pub fn wire_size(&self) -> usize {
        let body = match self {
            Response::Data(d) => d.len(),
            Response::Attrs(a) => 48 + a.opaque.len(),
            Response::Partitions(p) => p.iter().map(|(n, _)| n.len() + 10).sum(),
            Response::Batch(rs) => rs.iter().map(|r| r.wire_size()).sum(),
            _ => 0,
        };
        16 + body
    }
}

impl<D: BlockDev> S4Drive<D> {
    /// Verifies, executes, audits, and charges CPU time for one request.
    ///
    /// This is the drive's security perimeter (§3.2): *every* command —
    /// read, write, or administrative, successful or denied — is recorded
    /// in the audit log before the response leaves the drive.
    pub fn dispatch(&self, ctx: &RequestContext, req: &Request) -> Result<Response> {
        if let Request::Batch(reqs) = req {
            // Batches are not instrumented as a unit: each sub-request
            // re-enters dispatch and gets its own span + trace record.
            return self.dispatch_batch(ctx, reqs);
        }
        self.stats().requests(1);
        s4_obs::span::begin();
        let t_start = self.now().as_micros();
        let touched = match req {
            Request::Write { data, .. } | Request::Append { data, .. } => data.len(),
            Request::Read { len, .. } => *len as usize,
            _ => 0,
        };
        self.clock().advance(self.config().cpu.op_cost(touched));

        // Objects pinned by an in-flight cross-shard transaction reject
        // outside mutations (abort compensation must be able to restore
        // the pre-transaction version without racing anyone). Reads stay
        // allowed. The refusal still flows through the audit path below.
        let target = req.target();
        let locked = target.0 != 0
            && req.mutates()
            && self.txn_lock_holder(target).is_some();
        let result = if locked {
            Err(S4Error::BadRequest("object locked by an in-flight transaction"))
        } else {
            self.execute(ctx, req)
        };

        let (arg1, arg2) = req.audit_args();
        // A Create names its object only in the response; audit the
        // drive-assigned id so analysis can follow the object from birth.
        let object = match &result {
            Ok(Response::Created(oid)) => *oid,
            _ => req.target(),
        };
        self.audit_append(&AuditRecord {
            time: self.now(),
            user: ctx.user,
            client: ctx.client,
            op: req.op_kind(),
            ok: result.is_ok(),
            object,
            arg1,
            arg2,
        });
        if result.is_err() {
            self.stats().denied(1);
        }
        // Close the span: record per-layer latency histograms and the
        // flight-recorder trace (all simulated time, so the persisted
        // stream is deterministic and replayable).
        let span = s4_obs::span::take();
        self.record_dispatch(s4_obs::TraceRecord {
            seq: 0, // assigned by the persisted stream
            time_us: self.now().as_micros(),
            user: ctx.user.0,
            client: ctx.client.0,
            op: req.op_kind() as u8,
            ok: result.is_ok(),
            object: object.0,
            rpc_us: self.now().as_micros() - t_start,
            journal_us: span[s4_obs::Layer::Journal as usize],
            lfs_us: span[s4_obs::Layer::Lfs as usize],
            disk_us: span[s4_obs::Layer::Disk as usize],
            trace_id: ctx.trace.trace_id,
            origin: ctx.trace.origin,
            phase: ctx.trace.phase,
        });
        result
    }

    /// Executes a batch: each sub-request is dispatched (and audited)
    /// individually; the first failure aborts the remainder and is
    /// reported as [`S4Error::BatchFailed`], naming the failing index so
    /// callers know exactly which prefix of the batch took effect.
    fn dispatch_batch(&self, ctx: &RequestContext, reqs: &[Request]) -> Result<Response> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut last_created: Option<ObjectId> = None;
        for (i, sub) in reqs.iter().enumerate() {
            let fail = |error: S4Error| S4Error::BatchFailed {
                completed: i as u32,
                failed_at: i as u32,
                error: Box::new(error),
            };
            if matches!(sub, Request::Batch(_)) {
                return Err(fail(S4Error::BadRequest("nested batch")));
            }
            // Substitute the LAST_CREATED placeholder.
            let resolved = substitute_oid(sub, last_created).map_err(fail)?;
            let resp = self.dispatch(ctx, &resolved).map_err(fail)?;
            if let Response::Created(oid) = &resp {
                last_created = Some(*oid);
            }
            out.push(resp);
        }
        Ok(Response::Batch(out))
    }

    fn execute(&self, ctx: &RequestContext, req: &Request) -> Result<Response> {
        match req {
            Request::Create => self.op_create(ctx, None).map(Response::Created),
            Request::Delete { oid } => self.op_delete(ctx, *oid).map(|()| Response::Ok),
            Request::Read {
                oid,
                offset,
                len,
                time,
            } => self
                .op_read(ctx, *oid, *offset, *len, *time)
                .map(Response::Data),
            Request::Write { oid, offset, data } => self
                .op_write(ctx, *oid, *offset, data)
                .map(|()| Response::Ok),
            Request::Append { oid, data } => self.op_append(ctx, *oid, data).map(Response::NewSize),
            Request::Truncate { oid, len } => {
                self.op_truncate(ctx, *oid, *len).map(|()| Response::Ok)
            }
            Request::GetAttr { oid, time } => {
                self.op_getattr(ctx, *oid, *time).map(Response::Attrs)
            }
            Request::SetAttr { oid, attrs } => self
                .op_setattr(ctx, *oid, attrs.clone())
                .map(|()| Response::Ok),
            Request::GetAclByUser { oid, user, time } => self
                .op_get_acl_by_user(ctx, *oid, *user, *time)
                .map(Response::Acl),
            Request::GetAclByIndex { oid, index, time } => self
                .op_get_acl_by_index(ctx, *oid, *index, *time)
                .map(Response::Acl),
            Request::SetAcl { oid, entry } => {
                self.op_set_acl(ctx, *oid, *entry).map(|()| Response::Ok)
            }
            Request::PCreate { name, oid } => {
                self.op_pcreate(ctx, name, *oid).map(|()| Response::Ok)
            }
            Request::PDelete { name } => self.op_pdelete(ctx, name).map(|()| Response::Ok),
            Request::PList { time } => self.op_plist(ctx, *time).map(Response::Partitions),
            Request::PMount { name, time } => {
                self.op_pmount(ctx, name, *time).map(Response::Mounted)
            }
            Request::Sync => self.op_sync(ctx).map(|()| Response::Ok),
            Request::Flush { from, to } => self.op_flush(ctx, *from, *to).map(|()| Response::Ok),
            Request::FlushO { oid, from, to } => {
                self.op_flusho(ctx, *oid, *from, *to).map(|()| Response::Ok)
            }
            Request::SetWindow { window } => {
                self.op_set_window(ctx, *window).map(|()| Response::Ok)
            }
            Request::FlushAlerts => self.op_flush_alerts(ctx).map(Response::NewSize),
            Request::FlushTraces => self.op_flush_traces(ctx).map(Response::NewSize),
            Request::Batch(_) => Err(S4Error::BadRequest("batch inside execute")),
        }
    }

    /// Phase 1 of two-phase commit, participant side: opens transaction
    /// `txid`, executes `reqs` (each dispatched and audited exactly like
    /// a batch sub-request), and — on success — flushes the yes-vote
    /// with the precise touch scope. On any failure the partial effects
    /// are rolled back locally (scoped compensation) before the error
    /// propagates, so a refused prepare leaves no trace beyond audit
    /// records.
    pub fn txn_prepare(
        &self,
        ctx: &RequestContext,
        txid: u64,
        reqs: &[Request],
    ) -> Result<Vec<Response>> {
        let t0 = self.clock().now();
        self.clock().advance(SimDuration::from_micros(1));
        self.txn_prepare_at(ctx, txid, t0, reqs)
    }

    /// [`txn_prepare`](Self::txn_prepare) with a caller-chosen restore
    /// point. Array workers pass the same `t0` to every mirror member
    /// (after advancing the shared clock past it exactly once) so the
    /// members re-execute the sub-batch with identical version stamps.
    pub fn txn_prepare_at(
        &self,
        ctx: &RequestContext,
        txid: u64,
        t0: SimTime,
        reqs: &[Request],
    ) -> Result<Vec<Response>> {
        self.txn_begin_at(txid, t0)?;
        let mut touched_oids: Vec<u64> = Vec::new();
        let mut touched_names: Vec<String> = Vec::new();
        let mut last_created: Option<ObjectId> = None;
        let result = (|| {
            let mut out = Vec::with_capacity(reqs.len());
            for sub in reqs {
                match sub {
                    Request::Batch(_) => {
                        return Err(S4Error::BadRequest("nested batch in transaction"))
                    }
                    // Compensation can re-add objects but cannot restore
                    // a name some *other* client removed concurrently,
                    // and admin retention ops are not undoable at all.
                    Request::PDelete { .. } => {
                        return Err(S4Error::BadRequest("pdelete inside a transaction"))
                    }
                    Request::Flush { .. }
                    | Request::FlushO { .. }
                    | Request::SetWindow { .. }
                    | Request::FlushAlerts
                    | Request::FlushTraces => {
                        return Err(S4Error::BadRequest("admin op inside a transaction"))
                    }
                    _ => {}
                }
                let resolved = substitute_oid(sub, last_created)?;
                let resp = self.dispatch(ctx, &resolved)?;
                if let Response::Created(oid) = &resp {
                    last_created = Some(*oid);
                    touched_oids.push(oid.0);
                } else if resolved.mutates() {
                    match &resolved {
                        Request::PCreate { name, .. } => touched_names.push(name.clone()),
                        _ => {
                            let t = resolved.target();
                            if t.0 != 0 {
                                touched_oids.push(t.0);
                            }
                        }
                    }
                }
                out.push(resp);
            }
            Ok(out)
        })();
        touched_oids.sort_unstable();
        touched_oids.dedup();
        match result {
            Ok(out) => {
                self.txn_vote(txid, touched_oids, touched_names)?;
                Ok(out)
            }
            Err(e) => {
                // Record the partial scope, then abort it locally — the
                // coordinator will see the error and abort everywhere.
                self.txn_vote(txid, touched_oids, touched_names)?;
                self.txn_decide(txid, false)?;
                Err(e)
            }
        }
    }
}

/// Rewrites [`LAST_CREATED`] object references inside `req` to `last`.
fn substitute_oid(req: &Request, last: Option<ObjectId>) -> Result<Request> {
    let mut out = req.clone();
    let target = match &mut out {
        Request::Delete { oid }
        | Request::Read { oid, .. }
        | Request::Write { oid, .. }
        | Request::Append { oid, .. }
        | Request::Truncate { oid, .. }
        | Request::GetAttr { oid, .. }
        | Request::SetAttr { oid, .. }
        | Request::GetAclByUser { oid, .. }
        | Request::GetAclByIndex { oid, .. }
        | Request::SetAcl { oid, .. }
        | Request::PCreate { oid, .. }
        | Request::FlushO { oid, .. } => Some(oid),
        _ => None,
    };
    if let Some(oid) = target {
        if *oid == LAST_CREATED {
            *oid = last.ok_or(S4Error::BadRequest("LAST_CREATED before any Create"))?;
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Wire codec (hand-rolled: the wire format should be byte-stable).
// ----------------------------------------------------------------------

mod wire {
    use super::*;

    pub(super) fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub(super) fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub(super) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
        put_u32(out, b.len() as u32);
        out.extend_from_slice(b);
    }
    pub(super) fn put_time_opt(out: &mut Vec<u8>, t: Option<SimTime>) {
        match t {
            Some(t) => {
                out.push(1);
                put_u64(out, t.as_micros());
            }
            None => out.push(0),
        }
    }

    pub(super) struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub(super) fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }
        pub(super) fn u8(&mut self) -> Result<u8> {
            if self.pos >= self.buf.len() {
                return Err(S4Error::BadRequest("wire truncated"));
            }
            let v = self.buf[self.pos];
            self.pos += 1;
            Ok(v)
        }
        pub(super) fn u32(&mut self) -> Result<u32> {
            if self.pos + 4 > self.buf.len() {
                return Err(S4Error::BadRequest("wire truncated"));
            }
            let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
            self.pos += 4;
            Ok(v)
        }
        pub(super) fn u64(&mut self) -> Result<u64> {
            if self.pos + 8 > self.buf.len() {
                return Err(S4Error::BadRequest("wire truncated"));
            }
            let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
            self.pos += 8;
            Ok(v)
        }
        pub(super) fn bytes(&mut self) -> Result<Vec<u8>> {
            let n = self.u32()? as usize;
            if self.pos + n > self.buf.len() {
                return Err(S4Error::BadRequest("wire truncated"));
            }
            let v = self.buf[self.pos..self.pos + n].to_vec();
            self.pos += n;
            Ok(v)
        }
        pub(super) fn string(&mut self) -> Result<String> {
            String::from_utf8(self.bytes()?).map_err(|_| S4Error::BadRequest("wire utf8"))
        }
        pub(super) fn time_opt(&mut self) -> Result<Option<SimTime>> {
            Ok(match self.u8()? {
                0 => None,
                _ => Some(SimTime::from_micros(self.u64()?)),
            })
        }
    }
}

impl Request {
    /// Serializes the request for a transport.
    pub fn encode(&self) -> Vec<u8> {
        use wire::*;
        let mut out = Vec::new();
        match self {
            Request::Create => out.push(1),
            Request::Delete { oid } => {
                out.push(2);
                put_u64(&mut out, oid.0);
            }
            Request::Read {
                oid,
                offset,
                len,
                time,
            } => {
                out.push(3);
                put_u64(&mut out, oid.0);
                put_u64(&mut out, *offset);
                put_u64(&mut out, *len);
                put_time_opt(&mut out, *time);
            }
            Request::Write { oid, offset, data } => {
                out.push(4);
                put_u64(&mut out, oid.0);
                put_u64(&mut out, *offset);
                put_bytes(&mut out, data);
            }
            Request::Append { oid, data } => {
                out.push(5);
                put_u64(&mut out, oid.0);
                put_bytes(&mut out, data);
            }
            Request::Truncate { oid, len } => {
                out.push(6);
                put_u64(&mut out, oid.0);
                put_u64(&mut out, *len);
            }
            Request::GetAttr { oid, time } => {
                out.push(7);
                put_u64(&mut out, oid.0);
                put_time_opt(&mut out, *time);
            }
            Request::SetAttr { oid, attrs } => {
                out.push(8);
                put_u64(&mut out, oid.0);
                put_bytes(&mut out, attrs);
            }
            Request::GetAclByUser { oid, user, time } => {
                out.push(9);
                put_u64(&mut out, oid.0);
                put_u32(&mut out, user.0);
                put_time_opt(&mut out, *time);
            }
            Request::GetAclByIndex { oid, index, time } => {
                out.push(10);
                put_u64(&mut out, oid.0);
                put_u32(&mut out, *index);
                put_time_opt(&mut out, *time);
            }
            Request::SetAcl { oid, entry } => {
                out.push(11);
                put_u64(&mut out, oid.0);
                put_u32(&mut out, entry.user.0);
                out.push(entry.perm.0);
            }
            Request::PCreate { name, oid } => {
                out.push(12);
                put_bytes(&mut out, name.as_bytes());
                put_u64(&mut out, oid.0);
            }
            Request::PDelete { name } => {
                out.push(13);
                put_bytes(&mut out, name.as_bytes());
            }
            Request::PList { time } => {
                out.push(14);
                put_time_opt(&mut out, *time);
            }
            Request::PMount { name, time } => {
                out.push(15);
                put_bytes(&mut out, name.as_bytes());
                put_time_opt(&mut out, *time);
            }
            Request::Sync => out.push(16),
            Request::Flush { from, to } => {
                out.push(17);
                put_u64(&mut out, from.as_micros());
                put_u64(&mut out, to.as_micros());
            }
            Request::FlushO { oid, from, to } => {
                out.push(18);
                put_u64(&mut out, oid.0);
                put_u64(&mut out, from.as_micros());
                put_u64(&mut out, to.as_micros());
            }
            Request::SetWindow { window } => {
                out.push(19);
                put_u64(&mut out, window.as_micros());
            }
            Request::FlushAlerts => out.push(21),
            Request::FlushTraces => out.push(22),
            Request::Batch(reqs) => {
                out.push(20);
                put_u32(&mut out, reqs.len() as u32);
                for r in reqs {
                    put_bytes(&mut out, &r.encode());
                }
            }
        }
        out
    }

    /// Deserializes a request from a transport.
    pub fn decode(buf: &[u8]) -> Result<Request> {
        let mut r = wire::Reader::new(buf);
        Ok(match r.u8()? {
            1 => Request::Create,
            2 => Request::Delete {
                oid: ObjectId(r.u64()?),
            },
            3 => Request::Read {
                oid: ObjectId(r.u64()?),
                offset: r.u64()?,
                len: r.u64()?,
                time: r.time_opt()?,
            },
            4 => Request::Write {
                oid: ObjectId(r.u64()?),
                offset: r.u64()?,
                data: r.bytes()?,
            },
            5 => Request::Append {
                oid: ObjectId(r.u64()?),
                data: r.bytes()?,
            },
            6 => Request::Truncate {
                oid: ObjectId(r.u64()?),
                len: r.u64()?,
            },
            7 => Request::GetAttr {
                oid: ObjectId(r.u64()?),
                time: r.time_opt()?,
            },
            8 => Request::SetAttr {
                oid: ObjectId(r.u64()?),
                attrs: r.bytes()?,
            },
            9 => Request::GetAclByUser {
                oid: ObjectId(r.u64()?),
                user: UserId(r.u32()?),
                time: r.time_opt()?,
            },
            10 => Request::GetAclByIndex {
                oid: ObjectId(r.u64()?),
                index: r.u32()?,
                time: r.time_opt()?,
            },
            11 => Request::SetAcl {
                oid: ObjectId(r.u64()?),
                entry: AclEntry {
                    user: UserId(r.u32()?),
                    perm: Perm(r.u8()?),
                },
            },
            12 => Request::PCreate {
                name: r.string()?,
                oid: ObjectId(r.u64()?),
            },
            13 => Request::PDelete { name: r.string()? },
            14 => Request::PList {
                time: r.time_opt()?,
            },
            15 => Request::PMount {
                name: r.string()?,
                time: r.time_opt()?,
            },
            16 => Request::Sync,
            17 => Request::Flush {
                from: SimTime::from_micros(r.u64()?),
                to: SimTime::from_micros(r.u64()?),
            },
            18 => Request::FlushO {
                oid: ObjectId(r.u64()?),
                from: SimTime::from_micros(r.u64()?),
                to: SimTime::from_micros(r.u64()?),
            },
            19 => Request::SetWindow {
                window: SimDuration::from_micros(r.u64()?),
            },
            20 => {
                let n = r.u32()? as usize;
                let mut reqs = Vec::with_capacity(n.min(buf.len() / 2 + 1));
                for _ in 0..n {
                    let sub = r.bytes()?;
                    let decoded = Request::decode(&sub)?;
                    if matches!(decoded, Request::Batch(_)) {
                        return Err(S4Error::BadRequest("nested batch"));
                    }
                    reqs.push(decoded);
                }
                Request::Batch(reqs)
            }
            21 => Request::FlushAlerts,
            22 => Request::FlushTraces,
            _ => return Err(S4Error::BadRequest("unknown request tag")),
        })
    }
}

impl Response {
    /// Serializes the response for a transport.
    pub fn encode(&self) -> Vec<u8> {
        use wire::*;
        let mut out = Vec::new();
        match self {
            Response::Created(oid) => {
                out.push(1);
                put_u64(&mut out, oid.0);
            }
            Response::Ok => out.push(2),
            Response::Data(d) => {
                out.push(3);
                put_bytes(&mut out, d);
            }
            Response::NewSize(s) => {
                out.push(4);
                put_u64(&mut out, *s);
            }
            Response::Attrs(a) => {
                out.push(5);
                put_u64(&mut out, a.size);
                put_u64(&mut out, a.created.as_micros());
                put_u64(&mut out, a.modified.as_micros());
                match a.deleted {
                    Some(d) => {
                        out.push(1);
                        put_u64(&mut out, d.as_micros());
                    }
                    None => out.push(0),
                }
                put_bytes(&mut out, &a.opaque);
            }
            Response::Acl(e) => {
                out.push(6);
                match e {
                    Some(e) => {
                        out.push(1);
                        put_u32(&mut out, e.user.0);
                        out.push(e.perm.0);
                    }
                    None => out.push(0),
                }
            }
            Response::Partitions(p) => {
                out.push(7);
                put_u32(&mut out, p.len() as u32);
                for (name, oid) in p {
                    put_bytes(&mut out, name.as_bytes());
                    put_u64(&mut out, oid.0);
                }
            }
            Response::Mounted(oid) => {
                out.push(8);
                put_u64(&mut out, oid.0);
            }
            Response::Batch(rs) => {
                out.push(9);
                put_u32(&mut out, rs.len() as u32);
                for r in rs {
                    put_bytes(&mut out, &r.encode());
                }
            }
        }
        out
    }

    /// Deserializes a response from a transport.
    pub fn decode(buf: &[u8]) -> Result<Response> {
        let mut r = wire::Reader::new(buf);
        Ok(match r.u8()? {
            1 => Response::Created(ObjectId(r.u64()?)),
            2 => Response::Ok,
            3 => Response::Data(r.bytes()?),
            4 => Response::NewSize(r.u64()?),
            5 => {
                let size = r.u64()?;
                let created = SimTime::from_micros(r.u64()?);
                let modified = SimTime::from_micros(r.u64()?);
                let deleted = match r.u8()? {
                    0 => None,
                    _ => Some(SimTime::from_micros(r.u64()?)),
                };
                let opaque = r.bytes()?;
                Response::Attrs(ObjectAttrs {
                    size,
                    created,
                    modified,
                    deleted,
                    opaque,
                })
            }
            6 => Response::Acl(match r.u8()? {
                0 => None,
                _ => Some(AclEntry {
                    user: UserId(r.u32()?),
                    perm: Perm(r.u8()?),
                }),
            }),
            7 => {
                // Untrusted wire count: entries are >= 12 bytes each.
                let n = r.u32()? as usize;
                let mut p = Vec::with_capacity(n.min(buf.len() / 12 + 1));
                for _ in 0..n {
                    let name = r.string()?;
                    p.push((name, ObjectId(r.u64()?)));
                }
                Response::Partitions(p)
            }
            8 => Response::Mounted(ObjectId(r.u64()?)),
            9 => {
                let n = r.u32()? as usize;
                let mut rs = Vec::with_capacity(n.min(buf.len() / 2 + 1));
                for _ in 0..n {
                    let sub = r.bytes()?;
                    rs.push(Response::decode(&sub)?);
                }
                Response::Batch(rs)
            }
            _ => return Err(S4Error::BadRequest("unknown response tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Create,
            Request::Delete { oid: ObjectId(3) },
            Request::Read {
                oid: ObjectId(3),
                offset: 100,
                len: 200,
                time: Some(SimTime::from_secs(9)),
            },
            Request::Write {
                oid: ObjectId(3),
                offset: 0,
                data: vec![1, 2, 3],
            },
            Request::Append {
                oid: ObjectId(3),
                data: vec![4, 5],
            },
            Request::Truncate {
                oid: ObjectId(3),
                len: 1,
            },
            Request::GetAttr {
                oid: ObjectId(3),
                time: None,
            },
            Request::SetAttr {
                oid: ObjectId(3),
                attrs: vec![9],
            },
            Request::GetAclByUser {
                oid: ObjectId(3),
                user: UserId(5),
                time: None,
            },
            Request::GetAclByIndex {
                oid: ObjectId(3),
                index: 1,
                time: Some(SimTime::from_secs(1)),
            },
            Request::SetAcl {
                oid: ObjectId(3),
                entry: AclEntry {
                    user: UserId(5),
                    perm: Perm::READ,
                },
            },
            Request::PCreate {
                name: "root".into(),
                oid: ObjectId(3),
            },
            Request::PDelete {
                name: "root".into(),
            },
            Request::PList { time: None },
            Request::PMount {
                name: "root".into(),
                time: Some(SimTime::from_secs(2)),
            },
            Request::Sync,
            Request::Flush {
                from: SimTime::from_secs(1),
                to: SimTime::from_secs(2),
            },
            Request::FlushO {
                oid: ObjectId(3),
                from: SimTime::from_secs(1),
                to: SimTime::from_secs(2),
            },
            Request::SetWindow {
                window: SimDuration::from_days(7),
            },
            Request::FlushAlerts,
            Request::FlushTraces,
        ]
    }

    #[test]
    fn request_codec_round_trips_every_variant() {
        for req in all_requests() {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn response_codec_round_trips_every_variant() {
        let responses = vec![
            Response::Created(ObjectId(7)),
            Response::Ok,
            Response::Data(vec![1, 2, 3]),
            Response::NewSize(4096),
            Response::Attrs(ObjectAttrs {
                size: 10,
                created: SimTime::from_secs(1),
                modified: SimTime::from_secs(2),
                deleted: Some(SimTime::from_secs(3)),
                opaque: vec![5, 6],
            }),
            Response::Acl(Some(AclEntry {
                user: UserId(9),
                perm: Perm::ALL,
            })),
            Response::Acl(None),
            Response::Partitions(vec![("root".into(), ObjectId(3))]),
            Response::Mounted(ObjectId(3)),
        ];
        for resp in responses {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[0]).is_err());
        // Truncated payloads error instead of panicking.
        for req in all_requests() {
            let enc = req.encode();
            for cut in 0..enc.len() {
                let _ = Request::decode(&enc[..cut]);
            }
        }
    }

    #[test]
    fn table1_coverage() {
        // The 19 operations of Table 1 plus the two retention
        // extensions (FlushAlerts / FlushTraces).
        assert_eq!(all_requests().len(), 21);
        let mut kinds: Vec<u8> = all_requests().iter().map(|r| r.op_kind() as u8).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 21);
    }
}
