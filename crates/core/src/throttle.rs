//! History-pool abuse detection and throttling (§3.3).
//!
//! A malicious user cannot be prevented from writing — that would deny
//! service — and old versions cannot be pruned — that would let an
//! intruder destroy history. The paper's hybrid answer: when the history
//! pool comes under pressure, detect clients writing far above their rate
//! budget and *slow them down* ("selectively increasing latency and/or
//! decreasing bandwidth allows well-behaved users to continue to use the
//! system even while it is under attack"), buying the administrator time
//! to intervene.

use std::collections::HashMap;

use s4_clock::{SimDuration, SimTime};

/// Throttling policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ThrottleConfig {
    /// Master switch.
    pub enabled: bool,
    /// Pool pressure (fraction of data blocks referenced) above which
    /// throttling engages.
    pub pressure_threshold: f64,
    /// Per-client sustainable write rate while under pressure.
    pub budget_bytes_per_sec: u64,
    /// Added latency per byte written beyond budget, in nanoseconds.
    pub penalty_ns_per_excess_byte: u64,
    /// Cap on the penalty charged for a single request.
    pub max_penalty: SimDuration,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            enabled: true,
            pressure_threshold: 0.85,
            budget_bytes_per_sec: 1_000_000,
            penalty_ns_per_excess_byte: 2_000,
            max_penalty: SimDuration::from_millis(500),
        }
    }
}

impl ThrottleConfig {
    /// A disabled throttler.
    pub fn disabled() -> Self {
        ThrottleConfig {
            enabled: false,
            ..ThrottleConfig::default()
        }
    }
}

/// Per-client token bucket: a client accumulates budget over time and
/// spends it by writing.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// Bytes of budget available (may go negative, expressed as deficit).
    tokens: f64,
    last: SimTime,
}

/// The drive's throttling state.
#[derive(Clone, Debug)]
pub struct ThrottleState {
    config: ThrottleConfig,
    buckets: HashMap<u32, Bucket>,
    /// Total penalty ever charged (for stats/tests).
    pub total_penalty: SimDuration,
    /// Number of requests penalized.
    pub penalized_requests: u64,
}

impl ThrottleState {
    /// Creates throttle state under `config`.
    pub fn new(config: ThrottleConfig) -> Self {
        ThrottleState {
            config,
            buckets: HashMap::new(),
            total_penalty: SimDuration::ZERO,
            penalized_requests: 0,
        }
    }

    /// Records a write of `bytes` by `client` at `now` with the given pool
    /// `pressure`, returning the latency penalty to charge (zero when the
    /// pool is healthy or the client is within budget).
    pub fn on_write(
        &mut self,
        client: u32,
        bytes: u64,
        now: SimTime,
        pressure: f64,
    ) -> SimDuration {
        if !self.config.enabled {
            return SimDuration::ZERO;
        }
        let cap = self.config.budget_bytes_per_sec as f64; // burst = 1s of budget
        let bucket = self.buckets.entry(client).or_insert(Bucket {
            tokens: cap,
            last: now,
        });
        // Refill.
        let dt = now.saturating_since(bucket.last).as_secs_f64();
        bucket.last = now;
        bucket.tokens = (bucket.tokens + dt * self.config.budget_bytes_per_sec as f64).min(cap);
        // Spend.
        bucket.tokens -= bytes as f64;
        if pressure < self.config.pressure_threshold || bucket.tokens >= 0.0 {
            return SimDuration::ZERO;
        }
        let excess = -bucket.tokens;
        let penalty_us =
            (excess * self.config.penalty_ns_per_excess_byte as f64 / 1000.0).round() as u64;
        let penalty = SimDuration::from_micros(penalty_us).min(self.config.max_penalty);
        if penalty > SimDuration::ZERO {
            self.total_penalty += penalty;
            self.penalized_requests += 1;
        }
        penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ThrottleConfig {
        ThrottleConfig {
            enabled: true,
            pressure_threshold: 0.8,
            budget_bytes_per_sec: 1_000,
            penalty_ns_per_excess_byte: 1_000_000, // 1ms per excess byte
            max_penalty: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn no_penalty_when_pool_healthy() {
        let mut t = ThrottleState::new(config());
        let p = t.on_write(1, 1_000_000, SimTime::from_secs(1), 0.2);
        assert_eq!(p, SimDuration::ZERO);
    }

    #[test]
    fn no_penalty_within_budget_even_under_pressure() {
        let mut t = ThrottleState::new(config());
        let p = t.on_write(1, 500, SimTime::from_secs(1), 0.95);
        assert_eq!(p, SimDuration::ZERO);
    }

    #[test]
    fn abuser_is_penalized_and_capped() {
        let mut t = ThrottleState::new(config());
        let p = t.on_write(1, 100_000, SimTime::from_secs(1), 0.95);
        assert_eq!(p, SimDuration::from_secs(1), "hit the cap");
        assert_eq!(t.penalized_requests, 1);
    }

    #[test]
    fn budget_refills_over_time() {
        let mut t = ThrottleState::new(config());
        // Drain the bucket.
        let p1 = t.on_write(1, 1_500, SimTime::from_secs(1), 0.95);
        assert!(p1 > SimDuration::ZERO);
        // After 10 seconds of quiet, the bucket is full again.
        let p2 = t.on_write(1, 800, SimTime::from_secs(11), 0.95);
        assert_eq!(p2, SimDuration::ZERO);
    }

    #[test]
    fn clients_are_isolated() {
        let mut t = ThrottleState::new(config());
        let _ = t.on_write(1, 1_000_000, SimTime::from_secs(1), 0.95);
        // A different, well-behaved client pays nothing.
        let p = t.on_write(2, 100, SimTime::from_secs(1), 0.95);
        assert_eq!(p, SimDuration::ZERO);
    }

    #[test]
    fn disabled_throttler_is_free() {
        let mut t = ThrottleState::new(ThrottleConfig::disabled());
        let p = t.on_write(1, u64::MAX / 2, SimTime::from_secs(1), 1.0);
        assert_eq!(p, SimDuration::ZERO);
    }
}
