//! The object table: per-object versioning state and its checkpoint codec.
//!
//! Each object couples its [`ObjectMeta`] (the journal layer's "inode")
//! with drive-level state: the list of on-disk journal sectors (oldest
//! first — the authoritative backward chain used for time-based reads and
//! expiry), the entries not yet packed to a sector, the current metadata
//! checkpoint chain, and the forwarding map for blocks the cleaner has
//! relocated while history versions still reference their old addresses.
//!
//! An object can be *cached* (full [`ObjectEntry`] in memory) or *evicted*
//! (only its checkpoint root and expiry hints retained); the paper's 32 MB
//! object cache corresponds to the cached set.

use std::collections::HashMap;

use s4_clock::{HybridTimestamp, SimTime};
use s4_journal::{JournalEntry, ObjectMeta};
use s4_lfs::BlockAddr;

use crate::{Result, S4Error};

/// Where a delta-encoded history block's bytes live: applying the delta
/// stored at `(block, slot)` to the (possibly itself delta-encoded)
/// content at `base` reproduces the original block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeltaRef {
    /// Address whose content is the delta's source.
    pub base: BlockAddr,
    /// Shared delta block holding the encoded difference.
    pub block: BlockAddr,
    /// Sub-slot within the delta block.
    pub slot: u32,
}

/// Summary of one on-disk journal sector.
///
/// Journal sectors are small (§4.2.2), so the drive packs sectors of
/// *several* objects into each 4 KiB journal block; `slot` selects this
/// object's sector within the block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SectorInfo {
    /// Log address of the journal block holding the sector.
    pub addr: BlockAddr,
    /// Sub-sector index within the block.
    pub slot: u32,
    /// Stamp of the oldest entry in the sector.
    pub oldest: HybridTimestamp,
    /// Stamp of the newest entry in the sector.
    pub newest: HybridTimestamp,
}

/// Full in-memory state of one object.
#[derive(Clone, Debug)]
pub struct ObjectEntry {
    /// Current metadata (attributes, ACL blob, block map, journal head).
    pub meta: ObjectMeta,
    /// On-disk journal sectors, oldest first.
    pub sectors: Vec<SectorInfo>,
    /// Journal entries applied to `meta` but not yet packed to a sector.
    pub pending: Vec<JournalEntry>,
    /// Root of the current metadata checkpoint ([`BlockAddr::NONE`] if
    /// never checkpointed — recoverable from the journal alone while the
    /// full history is retained).
    pub checkpoint_root: BlockAddr,
    /// Sub-slot within a *shared* checkpoint block (small checkpoints of
    /// several objects share one 4 KiB block, like journal sectors);
    /// `u32::MAX` means the checkpoint is a dedicated chain of blocks.
    pub checkpoint_slot: u32,
    /// Every block of a dedicated checkpoint chain (released when a newer
    /// checkpoint supersedes it); empty for shared checkpoints, whose
    /// block is released through the drive's refcounts.
    pub checkpoint_blocks: Vec<BlockAddr>,
    /// Forwarding for relocated blocks: old address → new address.
    /// Consulted when resolving addresses found in (immutable) historical
    /// journal entries.
    pub forwards: HashMap<u64, u64>,
    /// History blocks whose bytes have been replaced by cross-version
    /// deltas (the cleaner's differencing pass, §4.2.2), keyed by the
    /// forward-resolved block address.
    pub deltas: HashMap<u64, DeltaRef>,
    /// Landmark versions (§6: "combining self-securing storage with
    /// long-term landmark versioning"): materialized metadata snapshots
    /// whose blocks are pinned past the detection window, newest last.
    pub landmarks: Vec<ObjectMeta>,
    /// Versions at or before this stamp have been reclaimed; time-based
    /// reads below it fail with `VersionUnavailable`.
    pub history_floor: HybridTimestamp,
    /// True if `meta`/`sectors` changed since the last checkpoint.
    pub dirty: bool,
    /// True if state *not derivable from the journal* changed since the
    /// last checkpoint (block-pointer rewrites and forwarding entries
    /// installed by the cleaner): the next anchor must write a fresh
    /// checkpoint or a crash would resurrect pointers into reclaimed
    /// segments.
    pub needs_checkpoint: bool,
    /// LRU clock for object-cache eviction.
    pub last_used: u64,
}

impl ObjectEntry {
    /// Fresh entry for a newly created object.
    pub fn new(meta: ObjectMeta) -> Self {
        ObjectEntry {
            meta,
            sectors: Vec::new(),
            pending: Vec::new(),
            checkpoint_root: BlockAddr::NONE,
            checkpoint_slot: u32::MAX,
            checkpoint_blocks: Vec::new(),
            forwards: HashMap::new(),
            deltas: HashMap::new(),
            landmarks: Vec::new(),
            history_floor: HybridTimestamp::ZERO,
            dirty: true,
            needs_checkpoint: false,
            last_used: 0,
        }
    }

    /// Resolves `addr` through the forwarding map to its current
    /// location.
    pub fn resolve_forward(&self, addr: BlockAddr) -> BlockAddr {
        let mut a = addr.0;
        let mut hops = 0;
        while let Some(&next) = self.forwards.get(&a) {
            a = next;
            hops += 1;
            debug_assert!(hops < 1_000_000, "forwarding cycle");
        }
        BlockAddr(a)
    }

    /// Resolves `addr` and removes the traversed forwarding entries
    /// (used when the address is being released and will never be looked
    /// up again).
    pub fn resolve_forward_and_prune(&mut self, addr: BlockAddr) -> BlockAddr {
        let mut a = addr.0;
        while let Some(next) = self.forwards.remove(&a) {
            a = next;
        }
        BlockAddr(a)
    }

    /// True if `addr` belongs to a landmark version's block map (such
    /// blocks are pinned: never released by expiry, flushes, or the
    /// differencing pass).
    pub fn is_landmark_block(&self, addr: BlockAddr) -> bool {
        self.landmarks
            .iter()
            .any(|m| m.blocks.values().any(|&a| a == addr))
    }

    /// Stamp used to decide whether this object has journal history old
    /// enough to expire: the newest stamp of the oldest sector
    /// ([`HybridTimestamp::MAX`] if no sectors are on disk).
    pub fn expiry_hint(&self) -> HybridTimestamp {
        self.sectors
            .first()
            .map(|s| s.newest)
            .unwrap_or(HybridTimestamp::MAX)
    }

    /// Serializes the entry for its metadata checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.meta.encode();
        out.extend_from_slice(&(self.sectors.len() as u32).to_le_bytes());
        for s in &self.sectors {
            out.extend_from_slice(&s.addr.0.to_le_bytes());
            out.extend_from_slice(&s.slot.to_le_bytes());
            push_stamp(&mut out, s.oldest);
            push_stamp(&mut out, s.newest);
        }
        out.extend_from_slice(&(self.forwards.len() as u32).to_le_bytes());
        // Deterministic order for reproducible images.
        let mut fw: Vec<(u64, u64)> = self.forwards.iter().map(|(&a, &b)| (a, b)).collect();
        fw.sort_unstable();
        for (old, new) in fw {
            out.extend_from_slice(&old.to_le_bytes());
            out.extend_from_slice(&new.to_le_bytes());
        }
        out.extend_from_slice(&(self.deltas.len() as u32).to_le_bytes());
        let mut dl: Vec<(u64, DeltaRef)> = self.deltas.iter().map(|(&k, &v)| (k, v)).collect();
        dl.sort_unstable_by_key(|(k, _)| *k);
        for (key, d) in dl {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&d.base.0.to_le_bytes());
            out.extend_from_slice(&d.block.0.to_le_bytes());
            out.extend_from_slice(&d.slot.to_le_bytes());
        }
        out.extend_from_slice(&(self.landmarks.len() as u32).to_le_bytes());
        for m in &self.landmarks {
            let blob = m.encode();
            out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        push_stamp(&mut out, self.history_floor);
        out
    }

    /// Deserializes an entry from a checkpoint blob.
    ///
    /// The decoded entry is clean (`dirty == false`) and has no pending
    /// journal entries; `checkpoint_root`/`checkpoint_blocks` are set by
    /// the caller, which knows where the blob was read from.
    pub fn decode(buf: &[u8]) -> Result<ObjectEntry> {
        let mut pos = 0;
        let meta = ObjectMeta::decode_from(buf, &mut pos)?;
        let need = |p: usize, n: usize| {
            if p + n > buf.len() {
                Err(S4Error::BadRequest("object checkpoint truncated"))
            } else {
                Ok(())
            }
        };
        need(pos, 4)?;
        let ns = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        need(pos, ns * 44)?;
        let mut sectors = Vec::with_capacity(ns);
        for _ in 0..ns {
            let addr = BlockAddr(u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()));
            pos += 8;
            let slot = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
            pos += 4;
            let oldest = read_stamp(buf, &mut pos)?;
            let newest = read_stamp(buf, &mut pos)?;
            sectors.push(SectorInfo {
                addr,
                slot,
                oldest,
                newest,
            });
        }
        need(pos, 4)?;
        let nf = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        need(pos, nf * 16)?;
        let mut forwards = HashMap::with_capacity(nf.min(buf.len() / 16 + 1));
        for _ in 0..nf {
            let old = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
            let new = u64::from_le_bytes(buf[pos + 8..pos + 16].try_into().unwrap());
            forwards.insert(old, new);
            pos += 16;
        }
        need(pos, 4)?;
        let nd = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        need(pos, nd * 28 + 16)?;
        let mut deltas = HashMap::with_capacity(nd.min(buf.len() / 28 + 1));
        for _ in 0..nd {
            let key = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
            let base = BlockAddr(u64::from_le_bytes(
                buf[pos + 8..pos + 16].try_into().unwrap(),
            ));
            let block = BlockAddr(u64::from_le_bytes(
                buf[pos + 16..pos + 24].try_into().unwrap(),
            ));
            let slot = u32::from_le_bytes(buf[pos + 24..pos + 28].try_into().unwrap());
            deltas.insert(key, DeltaRef { base, block, slot });
            pos += 28;
        }
        need(pos, 4)?;
        let nl = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        let mut landmarks = Vec::with_capacity(nl.min(64));
        for _ in 0..nl {
            need(pos, 4)?;
            let blen = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            need(pos, blen)?;
            let mut mp = 0;
            let m = ObjectMeta::decode_from(&buf[pos..pos + blen], &mut mp)?;
            landmarks.push(m);
            pos += blen;
        }
        let history_floor = read_stamp(buf, &mut pos)?;
        Ok(ObjectEntry {
            meta,
            sectors,
            pending: Vec::new(),
            checkpoint_root: BlockAddr::NONE,
            checkpoint_slot: u32::MAX,
            checkpoint_blocks: Vec::new(),
            forwards,
            deltas,
            landmarks,
            history_floor,
            dirty: false,
            needs_checkpoint: false,
            last_used: 0,
        })
    }
}

/// Residual record for an object whose full state has been evicted from
/// the object cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictInfo {
    /// Checkpoint root holding the full [`ObjectEntry`].
    pub checkpoint_root: BlockAddr,
    /// Sub-slot within a shared checkpoint block (`u32::MAX` = dedicated
    /// chain).
    pub checkpoint_slot: u32,
    /// Copy of [`ObjectEntry::expiry_hint`] at eviction time, so the
    /// expiry scan can skip objects with nothing old enough to reclaim.
    pub expiry_hint: HybridTimestamp,
    /// Copy of the deletion stamp, so fully-expired deleted objects can be
    /// detected without loading.
    pub deleted: Option<HybridTimestamp>,
}

/// A slot in the object table.
#[derive(Clone, Debug)]
pub enum Slot {
    /// Full state in memory.
    Cached(Box<ObjectEntry>),
    /// Only the checkpoint location retained.
    Evicted(EvictInfo),
}

fn push_stamp(out: &mut Vec<u8>, s: HybridTimestamp) {
    out.extend_from_slice(&s.time.as_micros().to_le_bytes());
    out.extend_from_slice(&s.seq.to_le_bytes());
}

fn read_stamp(buf: &[u8], pos: &mut usize) -> Result<HybridTimestamp> {
    if *pos + 16 > buf.len() {
        return Err(S4Error::BadRequest("stamp truncated"));
    }
    let time = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
    let seq = u64::from_le_bytes(buf[*pos + 8..*pos + 16].try_into().unwrap());
    *pos += 16;
    Ok(HybridTimestamp::new(SimTime::from_micros(time), seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(t: u64) -> HybridTimestamp {
        HybridTimestamp::new(SimTime::from_micros(t), t)
    }

    fn sample() -> ObjectEntry {
        let mut meta = ObjectMeta::new(9, stamp(1));
        meta.size = 8192;
        meta.blocks.insert(0, BlockAddr(100));
        meta.blocks.insert(1, BlockAddr(101));
        meta.attrs = vec![1, 2, 3];
        let mut e = ObjectEntry::new(meta);
        e.sectors.push(SectorInfo {
            addr: BlockAddr(50),
            slot: 0,
            oldest: stamp(1),
            newest: stamp(5),
        });
        e.sectors.push(SectorInfo {
            addr: BlockAddr(60),
            slot: 3,
            oldest: stamp(6),
            newest: stamp(9),
        });
        e.forwards.insert(100, 200);
        e.history_floor = stamp(2);
        e
    }

    #[test]
    fn encode_decode_round_trip() {
        let e = sample();
        let d = ObjectEntry::decode(&e.encode()).unwrap();
        assert_eq!(d.meta, e.meta);
        assert_eq!(d.sectors, e.sectors);
        assert_eq!(d.forwards, e.forwards);
        assert_eq!(d.history_floor, e.history_floor);
        assert!(!d.dirty);
        assert!(d.pending.is_empty());
    }

    #[test]
    fn forwarding_chains_resolve() {
        let mut e = sample();
        e.forwards.insert(200, 300);
        assert_eq!(e.resolve_forward(BlockAddr(100)), BlockAddr(300));
        assert_eq!(e.resolve_forward(BlockAddr(999)), BlockAddr(999));
        // Prune removes the whole chain.
        assert_eq!(e.resolve_forward_and_prune(BlockAddr(100)), BlockAddr(300));
        assert!(e.forwards.is_empty());
    }

    #[test]
    fn expiry_hint_tracks_oldest_sector() {
        let mut e = sample();
        assert_eq!(e.expiry_hint(), stamp(5));
        e.sectors.clear();
        assert_eq!(e.expiry_hint(), HybridTimestamp::MAX);
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = sample().encode();
        for cut in [0, 10, buf.len() / 2, buf.len() - 1] {
            assert!(ObjectEntry::decode(&buf[..cut]).is_err());
        }
    }
}
