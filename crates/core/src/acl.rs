//! Per-object access control with the Recovery flag.
//!
//! "The ACLs associated with objects have the traditional set of flags,
//! with one addition — the Recovery flag. The Recovery flag determines
//! whether or not a given user may read (recover) an object version from
//! the history pool once it is overwritten or deleted. When this flag is
//! clear, only the device administrator may read this object version once
//! it is pushed into the history pool." (§4.1.1)

use crate::ids::UserId;
use crate::{Result, S4Error};

/// Permission bits of one ACL entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Perm(pub u8);

impl Perm {
    /// May read current object data and attributes.
    pub const READ: Perm = Perm(1);
    /// May write data, truncate, and set attributes.
    pub const WRITE: Perm = Perm(2);
    /// May change the object's ACL and delete the object.
    pub const OWNER: Perm = Perm(4);
    /// The Recovery flag: may read this object's history-pool versions.
    pub const RECOVERY: Perm = Perm(8);

    /// Read + write + owner + recovery.
    pub const ALL: Perm = Perm(15);

    /// True if `self` includes every bit of `other`.
    pub fn includes(self, other: Perm) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two permission sets.
    pub fn union(self, other: Perm) -> Perm {
        Perm(self.0 | other.0)
    }

    /// `self` with the bits of `other` removed.
    pub fn without(self, other: Perm) -> Perm {
        Perm(self.0 & !other.0)
    }
}

/// One `(user, permissions)` pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AclEntry {
    /// The user this entry grants rights to.
    pub user: UserId,
    /// Granted permissions.
    pub perm: Perm,
}

/// An object's ACL table: an ordered list of entries, searched by user.
///
/// The table is stored in the object metadata as an opaque blob (the
/// journal layer versions it like any other metadata change), so ACL
/// history is fully recoverable too.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AclTable {
    entries: Vec<AclEntry>,
}

impl AclTable {
    /// An empty table (nobody but the administrator can touch the
    /// object).
    pub fn empty() -> Self {
        AclTable::default()
    }

    /// The default table for a newly created object: the creator gets all
    /// rights including Recovery.
    pub fn owner_default(owner: UserId) -> Self {
        AclTable {
            entries: vec![AclEntry {
                user: owner,
                perm: Perm::ALL,
            }],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry for `user`, if any.
    pub fn get_user(&self, user: UserId) -> Option<AclEntry> {
        self.entries.iter().copied().find(|e| e.user == user)
    }

    /// Entry at table index `idx` (for `GetACLByIndex`).
    pub fn get_index(&self, idx: usize) -> Option<AclEntry> {
        self.entries.get(idx).copied()
    }

    /// Inserts or replaces the entry for `entry.user`. An entry with no
    /// permission bits removes the user from the table.
    pub fn set(&mut self, entry: AclEntry) {
        self.entries.retain(|e| e.user != entry.user);
        if entry.perm.0 != 0 {
            self.entries.push(entry);
        }
    }

    /// Effective permissions of `user` (empty if absent).
    pub fn perms_of(&self, user: UserId) -> Perm {
        self.get_user(user).map(|e| e.perm).unwrap_or(Perm(0))
    }

    /// Serializes the table.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.entries.len() * 5);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.user.0.to_le_bytes());
            out.push(e.perm.0);
        }
        out
    }

    /// Deserializes a table.
    pub fn decode(buf: &[u8]) -> Result<AclTable> {
        if buf.len() < 4 {
            return Err(S4Error::BadRequest("acl blob too short"));
        }
        let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        if buf.len() < 4 + n * 5 {
            return Err(S4Error::BadRequest("acl blob truncated"));
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let o = 4 + i * 5;
            entries.push(AclEntry {
                user: UserId(u32::from_le_bytes(buf[o..o + 4].try_into().unwrap())),
                perm: Perm(buf[o + 4]),
            });
        }
        Ok(AclTable { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_algebra() {
        assert!(Perm::ALL.includes(Perm::RECOVERY));
        assert!(!Perm::READ.includes(Perm::WRITE));
        assert!(Perm::READ.union(Perm::WRITE).includes(Perm::WRITE));
        assert!(!Perm::ALL.without(Perm::RECOVERY).includes(Perm::RECOVERY));
    }

    #[test]
    fn owner_default_grants_all() {
        let t = AclTable::owner_default(UserId(3));
        assert!(t.perms_of(UserId(3)).includes(Perm::ALL));
        assert_eq!(t.perms_of(UserId(4)), Perm(0));
    }

    #[test]
    fn set_replaces_and_removes() {
        let mut t = AclTable::owner_default(UserId(1));
        t.set(AclEntry {
            user: UserId(2),
            perm: Perm::READ,
        });
        assert_eq!(t.len(), 2);
        // Downgrade user 1 to read-only.
        t.set(AclEntry {
            user: UserId(1),
            perm: Perm::READ,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.perms_of(UserId(1)), Perm::READ);
        // Clearing all bits removes the entry.
        t.set(AclEntry {
            user: UserId(2),
            perm: Perm(0),
        });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_index_matches_insertion_order() {
        let mut t = AclTable::owner_default(UserId(1));
        t.set(AclEntry {
            user: UserId(9),
            perm: Perm::READ,
        });
        assert_eq!(t.get_index(0).unwrap().user, UserId(1));
        assert_eq!(t.get_index(1).unwrap().user, UserId(9));
        assert!(t.get_index(2).is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut t = AclTable::owner_default(UserId(1));
        t.set(AclEntry {
            user: UserId(7),
            perm: Perm::READ.union(Perm::RECOVERY),
        });
        let d = AclTable::decode(&t.encode()).unwrap();
        assert_eq!(d, t);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AclTable::decode(&[1]).is_err());
        assert!(AclTable::decode(&[9, 0, 0, 0, 1]).is_err());
    }
}
