//! The drive-written alert object.
//!
//! Alerts raised by detectors running inside the drive's security
//! perimeter (see the `s4-detect` crate) are persisted to a second
//! reserved, drive-writable-only object, exactly like the audit log
//! (§4.2.3): an intruder with full client privileges can neither
//! suppress nor rewrite them. Unlike audit records, alert payloads are
//! variable-length opaque blobs (the drive does not interpret them), so
//! blocks hold a sequence of `u16`-length-prefixed entries; a zero
//! length terminates the block (zero padding).

use s4_lfs::{BlockAddr, BLOCK_SIZE};

use crate::{Result, S4Error};

/// Largest alert blob that fits in one block after the length prefix.
pub const MAX_ALERT_BYTES: usize = BLOCK_SIZE - 2;

/// Drive-internal state of the alert object: addresses of its full
/// blocks plus the in-memory tail buffer (mirrors `AuditState`).
#[derive(Clone, Debug, Default)]
pub struct AlertState {
    /// Addresses of the flushed alert blocks, in append order.
    pub blocks: Vec<BlockAddr>,
    /// Length-prefixed blobs buffered toward the next block.
    pub pending: Vec<u8>,
    /// Total alerts ever appended.
    pub total_alerts: u64,
    /// Blocks truncated from the front by admin retention flushes — the
    /// absolute stream index of `blocks[0]`, so cursors that count
    /// blocks stay stable across truncation.
    pub flushed_blocks: u64,
}

impl AlertState {
    /// Appends one alert blob; returns a full block payload when the
    /// buffer spills. Blobs above [`MAX_ALERT_BYTES`] are rejected.
    pub fn push(&mut self, blob: &[u8]) -> Result<Option<Vec<u8>>> {
        if blob.is_empty() || blob.len() > MAX_ALERT_BYTES {
            return Err(S4Error::BadRequest("alert blob size"));
        }
        let mut spilled = None;
        if self.pending.len() + 2 + blob.len() > BLOCK_SIZE {
            spilled = Some(std::mem::take(&mut self.pending));
        }
        self.pending
            .extend_from_slice(&(blob.len() as u16).to_le_bytes());
        self.pending.extend_from_slice(blob);
        self.total_alerts += 1;
        Ok(spilled)
    }

    /// Serializes the durable part (block list + totals) for the anchor
    /// payload. Like the audit tail, the pending buffer is persisted
    /// separately at anchor time.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.blocks.len() * 8);
        out.extend_from_slice(&self.total_alerts.to_le_bytes());
        out.extend_from_slice(&self.flushed_blocks.to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for b in &self.blocks {
            out.extend_from_slice(&b.0.to_le_bytes());
        }
        out
    }

    /// Deserializes from the anchor payload, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<AlertState> {
        if *pos + 20 > buf.len() {
            return Err(S4Error::BadRequest("alert state truncated"));
        }
        let total_alerts = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
        let flushed_blocks = u64::from_le_bytes(buf[*pos + 8..*pos + 16].try_into().unwrap());
        let n = u32::from_le_bytes(buf[*pos + 16..*pos + 20].try_into().unwrap()) as usize;
        *pos += 20;
        if *pos + n * 8 > buf.len() {
            return Err(S4Error::BadRequest("alert block list truncated"));
        }
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(BlockAddr(u64::from_le_bytes(
                buf[*pos..*pos + 8].try_into().unwrap(),
            )));
            *pos += 8;
        }
        Ok(AlertState {
            blocks,
            pending: Vec::new(),
            total_alerts,
            flushed_blocks,
        })
    }

    /// Removes the first `n` flushed blocks from the stream (admin
    /// retention), returning their addresses so the caller can release
    /// them, and advances the [`AlertState::flushed_blocks`] base.
    pub fn truncate_front(&mut self, n: usize) -> Vec<BlockAddr> {
        let n = n.min(self.blocks.len());
        self.flushed_blocks += n as u64;
        self.blocks.drain(..n).collect()
    }

    /// Decodes every blob in an alert block payload.
    pub fn decode_block(payload: &[u8]) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        let mut off = 0;
        while off + 2 <= payload.len() {
            let len = u16::from_le_bytes(payload[off..off + 2].try_into().unwrap()) as usize;
            if len == 0 {
                break; // zero padding
            }
            off += 2;
            if off + len > payload.len() {
                return Err(S4Error::BadRequest("alert blob truncated"));
            }
            out.push(payload[off..off + len].to_vec());
            off += len;
        }
        Ok(out)
    }

    /// Takes the buffered (partial) tail as a block payload, if any —
    /// called at anchor time so alerts survive restarts.
    pub fn take_pending_block(&mut self) -> Option<Vec<u8>> {
        if self.pending.is_empty() {
            return None;
        }
        Some(std::mem::take(&mut self.pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_decode_round_trip() {
        let mut st = AlertState::default();
        assert!(st.push(b"first alert").unwrap().is_none());
        assert!(st.push(b"second").unwrap().is_none());
        assert_eq!(st.total_alerts, 2);
        let block = st.take_pending_block().unwrap();
        let blobs = AlertState::decode_block(&block).unwrap();
        assert_eq!(blobs, vec![b"first alert".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn spills_full_blocks() {
        let mut st = AlertState::default();
        let blob = vec![7u8; 1000];
        let mut spilled = Vec::new();
        for _ in 0..9 {
            if let Some(b) = st.push(&blob).unwrap() {
                spilled.push(b);
            }
        }
        assert_eq!(spilled.len(), 2, "4 blobs of 1002 bytes per block");
        for b in &spilled {
            assert_eq!(AlertState::decode_block(b).unwrap().len(), 4);
        }
    }

    #[test]
    fn rejects_oversized_and_empty_blobs() {
        let mut st = AlertState::default();
        assert!(st.push(&[]).is_err());
        assert!(st.push(&vec![0u8; MAX_ALERT_BYTES + 1]).is_err());
        assert!(st.push(&vec![1u8; MAX_ALERT_BYTES]).is_ok());
    }

    #[test]
    fn decode_rejects_truncated_blob() {
        let mut payload = vec![0u8; 16];
        payload[0..2].copy_from_slice(&100u16.to_le_bytes());
        assert!(AlertState::decode_block(&payload).is_err());
    }

    #[test]
    fn state_encode_decode() {
        let st = AlertState {
            blocks: vec![BlockAddr(11), BlockAddr(42)],
            pending: vec![1, 2],
            total_alerts: 7,
            flushed_blocks: 3,
        };
        let enc = st.encode();
        let mut pos = 0;
        let d = AlertState::decode_from(&enc, &mut pos).unwrap();
        assert_eq!(d.blocks, st.blocks);
        assert_eq!(d.total_alerts, 7);
        assert_eq!(d.flushed_blocks, 3);
        assert!(d.pending.is_empty());
        assert_eq!(pos, enc.len());
    }

    #[test]
    fn truncate_front_advances_base_and_returns_addrs() {
        let mut st = AlertState {
            blocks: vec![BlockAddr(11), BlockAddr(42), BlockAddr(77)],
            pending: Vec::new(),
            total_alerts: 9,
            flushed_blocks: 0,
        };
        let freed = st.truncate_front(2);
        assert_eq!(freed, vec![BlockAddr(11), BlockAddr(42)]);
        assert_eq!(st.blocks, vec![BlockAddr(77)]);
        assert_eq!(st.flushed_blocks, 2);
        // Over-long truncation clamps.
        let freed = st.truncate_front(5);
        assert_eq!(freed.len(), 1);
        assert_eq!(st.flushed_blocks, 3);
        assert!(st.blocks.is_empty());
    }
}
