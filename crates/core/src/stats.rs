//! Operation counters exposed to the benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live drive counters; cheap to clone (shared).
#[derive(Clone, Debug, Default)]
pub struct DriveStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    denied: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    versions_created: AtomicU64,
    time_based_reads: AtomicU64,
    audit_records: AtomicU64,
    audit_blocks: AtomicU64,
    journal_sectors: AtomicU64,
    checkpoints: AtomicU64,
    expired_blocks: AtomicU64,
    cleaner_relocations: AtomicU64,
    cleaner_segments: AtomicU64,
    throttle_penalty_us: AtomicU64,
    syncs: AtomicU64,
    anchors: AtomicU64,
}

/// Snapshot of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub denied: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub versions_created: u64,
    pub time_based_reads: u64,
    pub audit_records: u64,
    pub audit_blocks: u64,
    pub journal_sectors: u64,
    pub checkpoints: u64,
    pub expired_blocks: u64,
    pub cleaner_relocations: u64,
    pub cleaner_segments: u64,
    pub throttle_penalty_us: u64,
    pub syncs: u64,
    pub anchors: u64,
}

macro_rules! bump {
    ($($name:ident),*) => {
        $(
            #[doc = concat!("Increments `", stringify!($name), "` by `n`.")]
            pub fn $name(&self, n: u64) {
                self.inner.$name.fetch_add(n, Ordering::Relaxed);
            }
        )*
    };
}

impl DriveStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    bump!(
        requests,
        denied,
        bytes_written,
        bytes_read,
        versions_created,
        time_based_reads,
        audit_records,
        audit_blocks,
        journal_sectors,
        checkpoints,
        expired_blocks,
        cleaner_relocations,
        cleaner_segments,
        throttle_penalty_us,
        syncs,
        anchors
    );

    /// Snapshot all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let c = &self.inner;
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            denied: c.denied.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
            bytes_read: c.bytes_read.load(Ordering::Relaxed),
            versions_created: c.versions_created.load(Ordering::Relaxed),
            time_based_reads: c.time_based_reads.load(Ordering::Relaxed),
            audit_records: c.audit_records.load(Ordering::Relaxed),
            audit_blocks: c.audit_blocks.load(Ordering::Relaxed),
            journal_sectors: c.journal_sectors.load(Ordering::Relaxed),
            checkpoints: c.checkpoints.load(Ordering::Relaxed),
            expired_blocks: c.expired_blocks.load(Ordering::Relaxed),
            cleaner_relocations: c.cleaner_relocations.load(Ordering::Relaxed),
            cleaner_segments: c.cleaner_segments.load(Ordering::Relaxed),
            throttle_penalty_us: c.throttle_penalty_us.load(Ordering::Relaxed),
            syncs: c.syncs.load(Ordering::Relaxed),
            anchors: c.anchors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let s = DriveStats::new();
        let s2 = s.clone();
        s.requests(3);
        s2.requests(1);
        s.bytes_written(4096);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4);
        assert_eq!(snap.bytes_written, 4096);
        assert_eq!(snap.denied, 0);
    }
}
