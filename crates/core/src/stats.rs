//! Operation counters exposed to the benchmarks.
//!
//! Since the observability PR these are backed by [`s4_obs`] registry
//! counters: a drive's `DriveStats` registers each counter as
//! `s4_<name>_total` in its metrics [`Registry`], so the same cells
//! feed both the long-standing `snapshot()` API and the Prometheus/JSON
//! exposition (`S4Drive::metrics_text`). The public API is unchanged.

use s4_obs::{Counter, Registry};

macro_rules! drive_counters {
    ($(($name:ident, $help:expr)),* $(,)?) => {
        /// Live drive counters; cheap to clone (shared cells).
        #[derive(Clone, Default)]
        pub struct DriveStats {
            $($name: Counter,)*
        }

        /// Snapshot of the counters.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub struct StatsSnapshot {
            $(pub $name: u64,)*
        }

        impl DriveStats {
            /// Fresh zeroed counters, not attached to any registry.
            pub fn new() -> Self {
                Self::default()
            }

            /// Fresh counters registered as `s4_<name>_total` in
            /// `registry`, so exposition sees every bump.
            pub fn registered(registry: &Registry) -> Self {
                DriveStats {
                    $($name: registry.counter(
                        concat!("s4_", stringify!($name), "_total"),
                        $help,
                    ),)*
                }
            }

            $(
                #[doc = concat!("Increments `", stringify!($name), "` by `n`.")]
                pub fn $name(&self, n: u64) {
                    self.$name.add(n);
                }
            )*

            /// Snapshot all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.get(),)*
                }
            }
        }

        impl StatsSnapshot {
            /// Field-wise `self - earlier` (saturating), for measuring
            /// an interval between two snapshots.
            pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                }
            }
        }
    };
}

drive_counters!(
    (requests, "RPC requests dispatched"),
    (denied, "requests rejected (access, bounds, bad args)"),
    (bytes_written, "object payload bytes written"),
    (bytes_read, "object payload bytes read"),
    (versions_created, "object versions created in the history pool"),
    (time_based_reads, "history reads at an explicit time"),
    (audit_records, "audit records appended"),
    (audit_blocks, "full audit blocks flushed to the log"),
    (journal_sectors, "journal subsectors packed into log entries"),
    (checkpoints, "object checkpoints written"),
    (expired_blocks, "history blocks expired past the window"),
    (cleaner_relocations, "live blocks relocated by the cleaner"),
    (cleaner_segments, "segments reclaimed by the cleaner"),
    (throttle_penalty_us, "simulated microseconds of throttle penalty"),
    (syncs, "log flushes (sync points)"),
    (anchors, "recovery anchors written"),
);

impl std::fmt::Debug for DriveStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriveStats")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let s = DriveStats::new();
        let s2 = s.clone();
        s.requests(3);
        s2.requests(1);
        s.bytes_written(4096);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4);
        assert_eq!(snap.bytes_written, 4096);
        assert_eq!(snap.denied, 0);
    }

    #[test]
    fn registered_counters_feed_the_registry() {
        let reg = Registry::new();
        let s = DriveStats::registered(&reg);
        s.requests(2);
        s.syncs(1);
        let text = reg.render_prometheus();
        assert!(text.contains("s4_requests_total 2"), "{text}");
        assert!(text.contains("s4_syncs_total 1"));
        assert!(text.contains("s4_anchors_total 0"));
    }

    #[test]
    fn snapshot_delta_subtracts_fieldwise() {
        let s = DriveStats::new();
        s.requests(10);
        s.bytes_written(100);
        let a = s.snapshot();
        s.requests(5);
        s.bytes_read(7);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.requests, 5);
        assert_eq!(d.bytes_read, 7);
        assert_eq!(d.bytes_written, 0);
        // Saturating: a reset-or-reordered earlier snapshot never
        // underflows.
        assert_eq!(a.delta(&b).requests, 0);
    }
}
