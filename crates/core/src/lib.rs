//! The S4 self-securing storage drive (§3–4 of the paper).
//!
//! S4 is a network-attached object store that treats its clients —
//! including the host operating system — as untrusted. Behind its security
//! perimeter it keeps **every version of every object** for a guaranteed
//! *detection window*, maintains an append-only **audit log** of all
//! requests, and serves time-based reads of the history pool so
//! administrators can diagnose and recover from intrusions even when the
//! host OS was compromised.
//!
//! This crate is the drive itself:
//!
//! * [`ids`] — object/user/client identifiers and the per-request context.
//! * [`acl`] — per-object ACL table with the paper's **Recovery flag**
//!   (who may read an object's history-pool versions).
//! * [`audit`] — audit records and the reserved, drive-written-only audit
//!   object (§4.2.3).
//! * [`object`] — the object table: journal-based metadata per object,
//!   checkpoints, sector chains, forwarding of cleaned blocks.
//! * [`throttle`] — history-pool abuse detection and per-client
//!   throttling (§3.3's hybrid answer to space-exhaustion attacks).
//! * [`drive`] — [`S4Drive`]: format/mount/recovery, the internal
//!   operation implementations, version expiry, and cleaner integration.
//! * [`rpc`] — the Table-1 RPC request/response types, their wire codec,
//!   and the authenticated dispatch entry point.
//! * [`stats`] — operation counters exposed to the benchmarks.
//!
//! [`S4Drive::dispatch`] is the audited front door — every request
//! (including denials) lands in the audit log. The `op_*` methods are the
//! operation implementations; library embedders who need the §3.2
//! security perimeter should go through `dispatch` or a transport.
//!
//! # Examples
//!
//! ```
//! use s4_clock::{SimClock, SimDuration};
//! use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
//! use s4_simdisk::MemDisk;
//!
//! let clock = SimClock::new();
//! let drive = S4Drive::format(
//!     MemDisk::with_capacity_bytes(32 << 20),
//!     DriveConfig::small_test(),
//!     clock.clone(),
//! )?;
//! let alice = RequestContext::user(UserId(1), ClientId(1));
//!
//! // Every modification creates a recoverable version.
//! let oid = drive.op_create(&alice, None)?;
//! drive.op_write(&alice, oid, 0, b"v1")?;
//! let t1 = drive.now();
//! clock.advance(SimDuration::from_secs(60));
//! drive.op_write(&alice, oid, 0, b"v2")?;
//!
//! assert_eq!(drive.op_read(&alice, oid, 0, 16, None)?, b"v2");
//! assert_eq!(drive.op_read(&alice, oid, 0, 16, Some(t1))?, b"v1");
//! # Ok::<(), s4_core::S4Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod alert;
pub mod audit;
pub mod drive;
pub mod ids;
pub mod object;
pub mod rpc;
pub mod stats;
pub mod throttle;

pub use acl::{AclEntry, AclTable, Perm};
pub use alert::{AlertState, MAX_ALERT_BYTES};
pub use audit::{AuditRecord, AuditState, OpKind};
pub use drive::{
    AlertCursor, AuditObserver, DriveConfig, RecoveryReport, ResyncImage, ResyncObject,
    ResyncStream, S4Drive, VersionKind, VersionRecord, ALERT_OBJECT, AUDIT_OBJECT,
    PARTITION_OBJECT, TRACE_OBJECT, TXN_OBJECT,
};
pub use ids::{
    ClientId, ObjectId, RequestContext, TraceCtx, TraceIdGen, UserId, ADMIN_USER, PHASE_APPLY,
    PHASE_CATCHUP, PHASE_CLIENT, PHASE_DECIDE, PHASE_NOTE, PHASE_PREPARE,
};
pub use rpc::{Request, Response};
pub use s4_obs::TraceRecord;
pub use stats::{DriveStats, StatsSnapshot};
pub use throttle::ThrottleConfig;

use std::fmt;

/// Errors returned by drive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S4Error {
    /// The requesting principal lacks permission for this operation.
    AccessDenied,
    /// The object does not exist (or did not exist at the requested time).
    NoSuchObject,
    /// The requested historical version has aged out of the history pool.
    VersionUnavailable,
    /// A partition name was not found.
    NoSuchPartition,
    /// A partition name already exists.
    PartitionExists,
    /// The request was malformed (bad range, bad name, oversized payload).
    BadRequest(&'static str),
    /// The history pool has consumed the device; writes cannot proceed
    /// until versions age out or an administrator intervenes (§3.3).
    PoolFull,
    /// The underlying log failed.
    Storage(s4_lfs::LfsError),
    /// A journal structure failed validation.
    Journal(s4_journal::JournalError),
    /// A batch aborted partway: `completed` sub-requests finished before
    /// sub-request `failed_at` returned `error`. Callers that batched
    /// mutations can tell exactly which prefix took effect.
    BatchFailed {
        /// Sub-requests that completed successfully before the failure.
        completed: u32,
        /// Index of the failing sub-request within the batch.
        failed_at: u32,
        /// The failing sub-request's error.
        error: Box<S4Error>,
    },
}

/// Classification of an [`S4Error`] as a disk-level fault, used by
/// redundancy layers to decide between retrying and declaring a member
/// dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// A fault worth retrying (an I/O error that may not recur).
    Transient,
    /// The device is gone or structurally unusable; retrying is futile.
    Fatal,
}

impl S4Error {
    /// Classifies this error as a disk fault, if it is one. Logical
    /// errors (denials, missing objects, malformed requests, a full
    /// history pool) return `None` — they are properties of the request
    /// or drive state, not of the medium, and must not trigger failover.
    pub fn disk_fault(&self) -> Option<DiskFaultKind> {
        match self {
            S4Error::Storage(s4_lfs::LfsError::Disk(d)) => match d {
                s4_simdisk::DiskError::Io(_) => Some(DiskFaultKind::Transient),
                s4_simdisk::DiskError::DeviceFailed
                | s4_simdisk::DiskError::OutOfRange { .. }
                | s4_simdisk::DiskError::UnalignedLength(_) => Some(DiskFaultKind::Fatal),
            },
            S4Error::Storage(s4_lfs::LfsError::Corrupt(_)) => Some(DiskFaultKind::Fatal),
            S4Error::BatchFailed { error, .. } => error.disk_fault(),
            _ => None,
        }
    }
}

impl fmt::Display for S4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S4Error::AccessDenied => write!(f, "access denied"),
            S4Error::NoSuchObject => write!(f, "no such object"),
            S4Error::VersionUnavailable => write!(f, "version aged out of history pool"),
            S4Error::NoSuchPartition => write!(f, "no such partition"),
            S4Error::PartitionExists => write!(f, "partition already exists"),
            S4Error::BadRequest(why) => write!(f, "bad request: {why}"),
            S4Error::PoolFull => write!(f, "history pool exhausted"),
            S4Error::Storage(e) => write!(f, "storage error: {e}"),
            S4Error::Journal(e) => write!(f, "journal error: {e}"),
            S4Error::BatchFailed {
                completed,
                failed_at,
                error,
            } => write!(
                f,
                "batch failed at sub-request {failed_at} after {completed} completed: {error}"
            ),
        }
    }
}

impl std::error::Error for S4Error {}

impl From<s4_lfs::LfsError> for S4Error {
    fn from(e: s4_lfs::LfsError) -> Self {
        match e {
            s4_lfs::LfsError::NoFreeSegments => S4Error::PoolFull,
            other => S4Error::Storage(other),
        }
    }
}

impl From<s4_journal::JournalError> for S4Error {
    fn from(e: s4_journal::JournalError) -> Self {
        S4Error::Journal(e)
    }
}

/// Result alias for drive operations.
pub type Result<T> = std::result::Result<T, S4Error>;
