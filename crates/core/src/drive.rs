//! [`S4Drive`]: the self-securing storage server.
//!
//! The drive composes the substrates: every object mutation appends data
//! blocks and a journal entry; sync packs entries into per-object journal
//! sectors — several objects' sectors share each 4 KiB journal block, as
//! the paper's 512-byte journal sectors share segments — and flushes the
//! log as one sequential batch. Periodic *anchors* persist the object
//! map (checkpoint locations plus each object's sector list); object
//! metadata checkpoints are written only when an object is evicted from
//! the object cache or when a cleaner relocation rewrote state the
//! journal cannot re-derive. The expiry scan walks the object map
//! releasing versions older than the detection window, and the cleaner
//! reclaims segments, forwarding still-referenced blocks.
//!
//! Crash recovery (mount) reloads the anchored object map, re-applies
//! journal sectors newer than each checkpoint and every journal block
//! flushed after the anchor, then rebuilds the reachable-block set (and
//! from it the segment usage counts) from first principles.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use s4_clock::sync::Mutex;

use s4_clock::{CpuModel, HybridClock, HybridTimestamp, SimClock, SimDuration, SimTime};
use s4_journal::txn::{self as txnlog, TxnRecord};
use s4_journal::{decode_sector, encode_sectors, redo, undo, JournalEntry, ObjectMeta, PtrChange};
use s4_lfs::{
    BlockAddr, BlockKind, BlockTag, CleanOutcome, Cleaner, CleanerConfig, Log, LogConfig,
    RelocationCallbacks, BLOCK_SIZE,
};
use s4_obs::{FlightRecorder, Histogram, Registry, TraceRecord};
use s4_simdisk::BlockDev;

use crate::acl::{AclEntry, AclTable, Perm};
use crate::alert::AlertState;
use crate::audit::{AuditRecord, AuditState, OpKind};
use crate::ids::{ObjectId, RequestContext};
use crate::object::{DeltaRef, EvictInfo, ObjectEntry, SectorInfo, Slot};
use crate::stats::DriveStats;
use crate::throttle::{ThrottleConfig, ThrottleState};
use crate::{Result, S4Error};

/// The reserved audit-log object (§4.2.3): writable only by the drive
/// front end, not versioned.
pub const AUDIT_OBJECT: ObjectId = ObjectId(1);

/// The reserved named-object (partition) table (§4.1): "implemented as a
/// special S4 object accessed through dedicated partition manipulation
/// RPC calls ... versioned in the same manner as other objects".
pub const PARTITION_OBJECT: ObjectId = ObjectId(2);

/// The reserved alert object: detectors running inside the security
/// perimeter persist their findings here. Like the audit log it is
/// writable only by the drive itself, so an intruder with full client
/// privileges can neither suppress nor rewrite raised alerts.
pub const ALERT_OBJECT: ObjectId = ObjectId(3);

/// The reserved flight-recorder (trace) object: the drive appends one
/// fixed-size [`TraceRecord`] per dispatched request, so the tail of
/// the request stream survives crashes and is readable by forensics
/// after remount. Drive-written-only, like the audit log. A high
/// sentinel id rather than the next small integer so the dynamic oid
/// space (which grows without bound) can never collide with it.
pub const TRACE_OBJECT: ObjectId = ObjectId(u64::MAX - 3);

/// The reserved per-drive transaction log for cross-shard two-phase
/// commit: participants persist `Prepared`/`Touched`/`Resolved` records
/// here ([`s4_journal::txn`]). Unlike the alert and trace streams
/// (whose volatile tails are only anchor-durable), this is a **real
/// journaled table object** — a record followed by a sync is durable at
/// that sync, which is exactly the commit-point discipline 2PC needs.
/// Created lazily on a drive's first transaction; truncated to zero
/// whenever no transaction is pending. Another high sentinel id so the
/// dynamic oid space can never collide with it.
pub const TXN_OBJECT: ObjectId = ObjectId(u64::MAX - 4);

const FIRST_DYNAMIC_OID: u64 = 4;
const ANCHOR_MAGIC: u32 = 0x5334_414E; // "S4AN"
const JBLOCK_MAGIC: u32 = 0x5334_4A42; // "S4JB"
const CPBLOCK_MAGIC: u32 = 0x5334_4342; // "S4CB"
const DBLOCK_MAGIC: u32 = 0x5334_4444; // "S4DD"
const SHARED_CP_THRESHOLD: usize = 1000;
const CHECKPOINT_CHUNK: usize = BLOCK_SIZE - 12;

/// Drive configuration.
#[derive(Clone, Copy, Debug)]
pub struct DriveConfig {
    /// Log layout and buffer-cache size.
    pub log: LogConfig,
    /// Maximum objects kept fully in memory (the paper's 32 MB object
    /// cache); excess objects are checkpointed and evicted at sync.
    pub object_cache_entries: usize,
    /// Guaranteed detection window (adjustable later via `SetWindow`).
    pub detection_window: SimDuration,
    /// Whether to record audit records (Figure 6 toggles this).
    pub audit_enabled: bool,
    /// Write an anchor every this many syncs.
    pub anchor_interval_syncs: u32,
    /// Server CPU cost model.
    pub cpu: CpuModel,
    /// History-pool abuse throttling.
    pub throttle: ThrottleConfig,
    /// Secret required for administrative commands (§3.5).
    pub admin_token: u64,
    /// Cleaner tuning.
    pub cleaner: CleanerConfig,
    /// Whether to persist per-request trace records to the reserved
    /// flight-recorder object (the in-memory ring always runs).
    pub flight_recorder: bool,
    /// Requests retained by the in-memory flight-recorder ring.
    pub flight_recorder_ring: usize,
    /// Fire a self-alert when the append-only alert object reaches this
    /// many flushed blocks (0 disables the warning).
    pub alert_warn_blocks: u64,
    /// Object-id allocation stride. A lone drive uses 1; shard `i` of an
    /// N-drive array uses stride N with [`DriveConfig::oid_offset`] `i`,
    /// so every id the drive assigns routes back to it under the array's
    /// `oid % N` placement rule — no cross-shard id coordination needed.
    pub oid_stride: u64,
    /// Residue (mod [`DriveConfig::oid_stride`]) of every object id this
    /// drive assigns.
    pub oid_offset: u64,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            log: LogConfig::default(),
            object_cache_entries: 1 << 20,
            detection_window: SimDuration::from_days(7),
            audit_enabled: true,
            anchor_interval_syncs: 2048,
            cpu: CpuModel::pentium3_600(),
            throttle: ThrottleConfig::default(),
            admin_token: 0x5345_4355_5245_5334, // "SECURES4"
            cleaner: CleanerConfig::default(),
            flight_recorder: true,
            flight_recorder_ring: 256,
            alert_warn_blocks: 1024, // ~4 MiB of alerts
            oid_stride: 1,
            oid_offset: 0,
        }
    }
}

impl DriveConfig {
    /// A small, fast configuration for unit tests: tiny segments, free
    /// CPU, tiny caches, frequent anchors.
    pub fn small_test() -> Self {
        DriveConfig {
            log: LogConfig {
                blocks_per_segment: 16,
                cache_blocks: 256,
                readahead_blocks: 1,
            },
            object_cache_entries: 1 << 20,
            detection_window: SimDuration::from_secs(3600),
            audit_enabled: true,
            anchor_interval_syncs: 64,
            cpu: CpuModel::free(),
            throttle: ThrottleConfig::disabled(),
            admin_token: 42,
            cleaner: CleanerConfig::default(),
            flight_recorder: true,
            flight_recorder_ring: 64,
            // Disabled so tests that count exact alert streams are not
            // perturbed; the warn path has its own dedicated test.
            alert_warn_blocks: 0,
            oid_stride: 1,
            oid_offset: 0,
        }
    }

    /// The same configuration as `self`, allocating object ids in the
    /// residue class `offset (mod stride)` — how an array builds its
    /// member-drive configs.
    pub fn with_oid_class(mut self, stride: u64, offset: u64) -> Self {
        assert!(stride >= 1, "oid stride must be at least 1");
        assert!(offset < stride, "oid offset must be < stride");
        self.oid_stride = stride;
        self.oid_offset = offset;
        self
    }
}

/// Attributes returned by `GetAttr` (the S4-specific part plus the opaque
/// client blob).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectAttrs {
    /// Object size in bytes.
    pub size: u64,
    /// Creation time.
    pub created: SimTime,
    /// Last-modification time (of the version being inspected).
    pub modified: SimTime,
    /// Deletion time, if the version is a deleted tombstone.
    pub deleted: Option<SimTime>,
    /// The opaque attribute blob maintained by client file systems.
    pub opaque: Vec<u8>,
}

/// The kind of mutation behind one retained version (see
/// [`S4Drive::version_history`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum VersionKind {
    Create,
    Write,
    Truncate,
    SetAttr,
    SetAcl,
    Delete,
    /// Internal checkpoint marker (not a client mutation).
    Checkpoint,
    /// Transaction-abort compensation cancelling a mid-transaction
    /// deletion (drive-originated, not a client mutation).
    Revive,
}

/// One entry of an object's tamper/version timeline, derived from the
/// journal history the drive itself retains — ground truth a client-side
/// intruder cannot rewrite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionRecord {
    /// Version stamp of the mutation.
    pub stamp: HybridTimestamp,
    /// What kind of mutation produced this version.
    pub kind: VersionKind,
    /// Object size after the mutation, where the journal records it.
    pub size_after: Option<u64>,
}

impl VersionRecord {
    fn from_entry(e: &JournalEntry) -> VersionRecord {
        let (kind, size_after) = match e {
            JournalEntry::Create { .. } => (VersionKind::Create, Some(0)),
            JournalEntry::Delete { .. } => (VersionKind::Delete, None),
            JournalEntry::Write { new_size, .. } => (VersionKind::Write, Some(*new_size)),
            JournalEntry::Truncate { new_size, .. } => (VersionKind::Truncate, Some(*new_size)),
            JournalEntry::SetAttr { .. } => (VersionKind::SetAttr, None),
            JournalEntry::SetAcl { .. } => (VersionKind::SetAcl, None),
            JournalEntry::Checkpoint { .. } => (VersionKind::Checkpoint, None),
            JournalEntry::Revive { .. } => (VersionKind::Revive, None),
        };
        VersionRecord {
            stamp: e.stamp(),
            kind,
            size_after,
        }
    }
}

/// What crash recovery found and rebuilt, returned by
/// [`S4Drive::mount_with_report`]. The torture harness uses it to bound
/// the recovery point: everything stamped at or before
/// [`RecoveryReport::max_recovered_stamp`] survived the crash.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Simulated time recorded in the anchor's superblock.
    pub anchor_time: SimTime,
    /// Objects present in the anchored object map.
    pub anchored_objects: usize,
    /// Log batches flushed after the anchor that roll-forward replayed.
    pub replayed_batches: usize,
    /// Journal sub-sectors re-applied from those batches.
    pub replayed_sectors: usize,
    /// Journal entries re-applied from those sectors.
    pub replayed_entries: usize,
    /// Audit-log blocks reachable after recovery (anchored + replayed).
    pub audit_blocks: usize,
    /// Alert-object blocks reachable after recovery (anchored + replayed).
    pub alert_blocks: usize,
    /// Flight-recorder (trace) blocks reachable after recovery.
    pub trace_blocks: usize,
    /// Objects in the recovered table (anchored plus any created in
    /// replayed batches).
    pub recovered_objects: usize,
    /// Next object id the drive will assign.
    pub next_oid: u64,
    /// Newest mutation stamp visible anywhere in the recovered state —
    /// the recovery point. [`HybridTimestamp::ZERO`] on an empty drive.
    pub max_recovered_stamp: HybridTimestamp,
}

/// Resume point for incremental alert reads (see
/// [`S4Drive::read_alerts_from`]). Start from `AlertCursor::default()`;
/// the drive advances it on every poll.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlertCursor {
    /// Flushed alert blocks fully consumed, counted from the start of
    /// the stream (absolute — stable across retention truncation).
    pub blocks: usize,
    /// Blobs of the in-memory pending tail already consumed (they become
    /// the prefix of the next flushed block when the tail spills).
    pub tail_blobs: usize,
}

struct Inner {
    table: HashMap<u64, Slot>,
    next_oid: u64,
    window: SimDuration,
    audit: AuditState,
    alerts: AlertState,
    /// Flight-recorder stream: same spill discipline as alerts (the
    /// blobs are fixed-size encoded [`TraceRecord`]s).
    traces: AlertState,
    /// One-shot latch for the alert-object growth self-alert.
    alert_growth_warned: bool,
    /// Every reachable block (current data, in-window history, journal
    /// blocks, checkpoints, audit blocks). Rebuilt from first principles
    /// at mount.
    live: HashSet<u64>,
    /// Per journal-block count of sectors still referenced by some
    /// object's sector list; the block is released when it reaches zero.
    jblock_refs: HashMap<u64, u32>,
    /// Per shared-checkpoint-block count of object checkpoints stored in
    /// it; released at zero.
    cpblock_refs: HashMap<u64, u32>,
    /// Per shared-delta-block count of delta payloads still referenced;
    /// released at zero.
    dblock_refs: HashMap<u64, u32>,
    throttle: ThrottleState,
    syncs_since_anchor: u32,
    lru: u64,
    /// Unresolved (prepared, not yet committed/aborted) cross-shard
    /// transactions this drive participates in, keyed by txid. Rebuilt
    /// from [`TXN_OBJECT`] at mount. `BTreeMap` for deterministic
    /// digest iteration.
    txn_pending: BTreeMap<u64, TxnPending>,
    /// Objects pinned by an in-flight transaction (oid → txid): the
    /// dispatcher rejects outside mutations so abort compensation can
    /// restore the pre-transaction version without clobbering anyone.
    txn_locks: BTreeMap<u64, u64>,
}

/// In-memory state of one unresolved transaction (see
/// [`s4_journal::txn::InDoubtTxn`] for the recovered form).
struct TxnPending {
    /// Pre-transaction timestamp (µs); compensation restores to here.
    t0_us: u64,
    /// Exact touch scope once the vote record is durable; `None` while
    /// preparing (a crash then means blanket compensation).
    touched: Option<(Vec<u64>, Vec<String>)>,
}

/// An online detector fed every freshly appended audit record (the
/// `s4-detect` crate provides implementations). Runs inside the drive's
/// security perimeter: any blobs it returns are persisted to the
/// reserved alert object, which clients cannot write.
pub trait AuditObserver: Send {
    /// Called after each audited request; returns encoded alert blobs
    /// to persist (empty when the record is unremarkable).
    fn on_record(&mut self, rec: &AuditRecord) -> Vec<Vec<u8>>;
}

/// Per-drive observability state: the metrics registry every layer
/// reports into, the hot-path latency histograms, and the in-memory
/// flight-recorder ring (the persisted trace stream lives in
/// [`Inner::traces`]).
struct DriveObs {
    registry: Registry,
    rpc_hist: Histogram,
    journal_hist: Histogram,
    lfs_hist: Histogram,
    disk_hist: Histogram,
    recorder: FlightRecorder,
}

impl DriveObs {
    fn new(config: &DriveConfig) -> DriveObs {
        let registry = Registry::new();
        let rpc_hist = registry.histogram(
            "s4_rpc_latency_us",
            "whole-dispatch latency per request, simulated microseconds",
        );
        let journal_hist = registry.histogram(
            "s4_journal_latency_us",
            "journal packing time per request that packed entries, simulated microseconds",
        );
        let lfs_hist = registry.histogram(
            "s4_lfs_latency_us",
            "device time inside LFS segment flushes per flushing request, simulated microseconds",
        );
        let disk_hist = registry.histogram(
            "s4_disk_latency_us",
            "simulated disk service time per request that touched the device, microseconds",
        );
        DriveObs {
            registry,
            rpc_hist,
            journal_hist,
            lfs_hist,
            disk_hist,
            recorder: FlightRecorder::new(config.flight_recorder_ring),
        }
    }
}

/// The S4 drive.
pub struct S4Drive<D: BlockDev> {
    log: Log<D>,
    clock: SimClock,
    stamps: HybridClock,
    config: DriveConfig,
    // The oid residue class new objects are allocated in. Initialized
    // from `config` but runtime-mutable: a reshard flip narrows a
    // source member's class from (N, s) to (2N, s) without a remount.
    oid_stride: AtomicU64,
    oid_offset: AtomicU64,
    inner: Mutex<Inner>,
    stats: DriveStats,
    cleaner: Cleaner,
    observers: Mutex<Vec<Box<dyn AuditObserver>>>,
    obs: DriveObs,
}

impl<D: BlockDev> S4Drive<D> {
    /// Formats `dev` as a fresh S4 drive and writes the initial anchor.
    pub fn format(dev: D, config: DriveConfig, clock: SimClock) -> Result<S4Drive<D>> {
        let drive = Self::format_bare(dev, config, clock)?;
        // Create the partition-table object (versioned like any other).
        {
            let mut inner = drive.inner.lock();
            let stamp = drive.stamps.next();
            let meta = ObjectMeta::new(PARTITION_OBJECT.0, stamp);
            let mut entry = ObjectEntry::new(meta);
            entry.pending.push(JournalEntry::Create { stamp });
            inner
                .table
                .insert(PARTITION_OBJECT.0, Slot::Cached(Box::new(entry)));
            drive.sync_locked(&mut inner)?;
            drive.anchor_locked(&mut inner)?;
        }
        Ok(drive)
    }

    /// Formats the log and builds the empty drive, without creating the
    /// partition object or anchoring — shared by [`S4Drive::format`] and
    /// [`S4Drive::format_from_image`] (which replays the partition
    /// object, along with everything else, from the image).
    fn format_bare(dev: D, config: DriveConfig, clock: SimClock) -> Result<S4Drive<D>> {
        let log = Log::format(dev, config.log)?;
        let stamps = HybridClock::new(clock.clone());
        let obs = DriveObs::new(&config);
        let drive = S4Drive {
            log,
            clock,
            stamps,
            cleaner: Cleaner::new(config.cleaner),
            stats: DriveStats::registered(&obs.registry),
            oid_stride: AtomicU64::new(config.oid_stride),
            oid_offset: AtomicU64::new(config.oid_offset),
            config,
            inner: Mutex::new(Inner {
                table: HashMap::new(),
                next_oid: FIRST_DYNAMIC_OID,
                window: config.detection_window,
                audit: AuditState::default(),
                alerts: AlertState::default(),
                traces: AlertState::default(),
                alert_growth_warned: false,
                live: HashSet::new(),
                jblock_refs: HashMap::new(),
                cpblock_refs: HashMap::new(),
                dblock_refs: HashMap::new(),
                throttle: ThrottleState::new(config.throttle),
                syncs_since_anchor: 0,
                lru: 0,
                txn_pending: BTreeMap::new(),
                txn_locks: BTreeMap::new(),
            }),
            observers: Mutex::new(Vec::new()),
            obs,
        };
        Ok(drive)
    }

    /// Mounts an existing S4 drive, recovering to the last completed sync.
    pub fn mount(dev: D, config: DriveConfig, clock: SimClock) -> Result<S4Drive<D>> {
        Self::mount_with_report(dev, config, clock).map(|(drive, _)| drive)
    }

    /// Like [`S4Drive::mount`], but also returns a [`RecoveryReport`]
    /// describing what roll-forward found — the crash-consistency
    /// harness asserts its invariants against this.
    pub fn mount_with_report(
        dev: D,
        config: DriveConfig,
        clock: SimClock,
    ) -> Result<(S4Drive<D>, RecoveryReport)> {
        let (log, payload, batches, sb) = Log::mount(dev, config.log.cache_blocks)?;
        clock.advance_to(SimTime::from_micros(sb.anchor_time_us));

        let (mut inner, records) = decode_anchor_payload(&payload, &config)?;
        let mut report = RecoveryReport {
            anchor_time: SimTime::from_micros(sb.anchor_time_us),
            anchored_objects: records.len(),
            replayed_batches: batches.len(),
            ..RecoveryReport::default()
        };

        // Phase 1: rebuild each anchored object from its checkpoint plus
        // the journal sectors newer than the checkpointed metadata.
        for rec in &records {
            let mut entry = if rec.root.is_none() {
                // Journal-only object: its entire history (from the
                // Create entry) is in the anchored sector list.
                let sectors = rec.sectors.clone().unwrap_or_default();
                let Some(first) = sectors.first() else {
                    return Err(S4Error::BadRequest("anchored object with no state"));
                };
                let (_o, entries) = read_subsector(&log, first.addr, first.slot)?;
                let Some(JournalEntry::Create { stamp }) = entries.first() else {
                    return Err(S4Error::BadRequest("journal-only object without create"));
                };
                ObjectEntry::new(ObjectMeta::new(rec.oid, *stamp))
            } else {
                let (mut e, blocks) = read_checkpoint_static(&log, rec.root, rec.slot)?;
                e.checkpoint_root = rec.root;
                e.checkpoint_slot = rec.slot;
                e.checkpoint_blocks = blocks;
                e
            };
            if let Some(sectors) = &rec.sectors {
                entry.sectors = sectors.clone();
                entry.history_floor = entry.history_floor.max(rec.floor);
            }
            let cp_modified = entry.meta.modified;
            let sectors = entry.sectors.clone();
            for s in &sectors {
                if s.newest <= cp_modified {
                    continue;
                }
                let (_oid, entries) = read_subsector(&log, s.addr, s.slot)?;
                for e in &entries {
                    if e.stamp() > cp_modified {
                        redo(&mut entry.meta, e);
                    }
                }
            }
            if let Some(last) = entry.sectors.last() {
                entry.meta.journal_head = last.addr;
                report.max_recovered_stamp = report.max_recovered_stamp.max(last.newest);
            }
            report.max_recovered_stamp = report.max_recovered_stamp.max(entry.meta.modified);
            if let Some(d) = entry.meta.deleted {
                report.max_recovered_stamp = report.max_recovered_stamp.max(d);
            }
            entry.dirty = false;
            inner.table.insert(rec.oid, Slot::Cached(Box::new(entry)));
            // High-sentinel reserved objects (the transaction log) must
            // not drag the dynamic id allocator to the top of the space.
            if rec.oid < TXN_OBJECT.0 {
                inner.next_oid = inner.next_oid.max(rec.oid + 1);
            }
        }

        // Phase 2: re-apply every journal block flushed after the anchor.
        let mut max_seq = sb.next_stamp_seq;
        for batch in &batches {
            for &(addr, tag) in &batch.blocks {
                match tag.kind {
                    BlockKind::JournalSector => {
                        let block = log.read_block(addr)?;
                        let subs = split_container(JBLOCK_MAGIC, &block)?;
                        for (slot, sub) in subs.iter().enumerate() {
                            let (oid, _prev, entries) = decode_sector(sub)?;
                            apply_recovered_sector(&mut inner, oid, addr, slot as u32, &entries)?;
                            report.replayed_sectors += 1;
                            report.replayed_entries += entries.len();
                            for e in &entries {
                                max_seq = max_seq.max(e.stamp().seq + 1);
                                report.max_recovered_stamp =
                                    report.max_recovered_stamp.max(e.stamp());
                            }
                        }
                    }
                    BlockKind::Audit if tag.object == ALERT_OBJECT.0 => {
                        inner.alerts.blocks.push(addr);
                    }
                    BlockKind::Audit if tag.object == TRACE_OBJECT.0 => {
                        // Post-anchor flight-recorder blocks: re-derive
                        // the record total from the block contents so
                        // the persisted seq counter stays contiguous
                        // (the anchored total only covers anchored
                        // blocks; the volatile tail died with the
                        // crash).
                        inner.traces.blocks.push(addr);
                        let block = log.read_block(addr)?;
                        inner.traces.total_alerts +=
                            AlertState::decode_block(&block)?.len() as u64;
                    }
                    BlockKind::Audit => {
                        inner.audit.blocks.push(addr);
                    }
                    // Data blocks become reachable via the journal entries
                    // referencing them; orphaned post-anchor checkpoints
                    // and relocated copies are intentionally dropped.
                    _ => {}
                }
            }
        }

        // Phase 3: rebuild the reachable-block set and journal-block
        // refcounts from the recovered object table.
        rebuild_liveness(&log, &mut inner)?;
        log.rebuild_live_counts(inner.live.iter().map(|&a| BlockAddr(a)));

        report.audit_blocks = inner.audit.blocks.len();
        report.alert_blocks = inner.alerts.blocks.len();
        report.trace_blocks = inner.traces.blocks.len();
        report.recovered_objects = inner.table.len();
        report.next_oid = inner.next_oid;

        // Power loss can strand the anchor behind journal batches flushed
        // after it, and the anchor time is all the superblock records. Every
        // stamp issued from here on must order *after* every recovered
        // mutation — otherwise recovery-time writes (transaction
        // compensation above all) would be shadowed by the very versions
        // they supersede once a later mount re-sorts history by stamp. Time
        // dominates the stamp order, so fast-forward to the newest
        // recovered instant; the resumed sequence counter breaks the tie
        // within it.
        clock.advance_to(report.max_recovered_stamp.time);

        let stamps = HybridClock::resuming_from(clock.clone(), max_seq.max(sb.next_stamp_seq));
        let obs = DriveObs::new(&config);
        let drive = S4Drive {
            log,
            clock,
            stamps,
            cleaner: Cleaner::new(config.cleaner),
            stats: DriveStats::registered(&obs.registry),
            oid_stride: AtomicU64::new(config.oid_stride),
            oid_offset: AtomicU64::new(config.oid_offset),
            config,
            inner: Mutex::new(inner),
            observers: Mutex::new(Vec::new()),
            obs,
        };
        // Rebuild in-doubt transaction state from the recovered
        // transaction log (the array resolves them against the
        // coordinator's decision notes before serving traffic).
        drive.rebuild_txn_state()?;
        Ok((drive, report))
    }

    /// Drops the drive *without* syncing or anchoring and returns the
    /// underlying device — simulating power loss for crash-recovery
    /// tests and experiments. All volatile state (caches, pending
    /// journal entries, buffered audit records) is lost, exactly as on a
    /// real crash.
    pub fn crash(self) -> D {
        self.log.into_device()
    }

    /// Syncs, anchors, and returns the underlying device.
    pub fn unmount(self) -> Result<D> {
        {
            let mut inner = self.inner.lock();
            self.sync_locked(&mut inner)?;
            self.anchor_locked(&mut inner)?;
        }
        Ok(self.log.into_device())
    }

    /// The simulated clock this drive charges.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Live operation counters.
    pub fn stats(&self) -> &DriveStats {
        &self.stats
    }

    /// Fraction of data-area blocks referenced (current + history).
    pub fn utilization(&self) -> f64 {
        self.log.utilization()
    }

    /// Free segments remaining in the log.
    pub fn free_segments(&self) -> u32 {
        self.log.free_segments()
    }

    /// The current detection window.
    pub fn detection_window(&self) -> SimDuration {
        self.inner.lock().window
    }

    /// The drive configuration.
    pub fn config(&self) -> &DriveConfig {
        &self.config
    }

    /// The oid residue class new objects are allocated in, as
    /// `(stride, offset)`. Starts from the formatted configuration;
    /// [`S4Drive::set_oid_class`] narrows it at runtime during a
    /// reshard flip.
    pub fn oid_class(&self) -> (u64, u64) {
        (
            self.oid_stride.load(Ordering::Acquire),
            self.oid_offset.load(Ordering::Acquire),
        )
    }

    /// Changes the oid residue class new objects are allocated in. A
    /// reshard flip calls this on the source shard's members to narrow
    /// their class from `(N, s)` to `(2N, s)` the moment the split
    /// class `(2N, s+N)` is handed to the new shard.
    pub fn set_oid_class(&self, stride: u64, offset: u64) {
        assert!(stride >= 1, "oid stride must be at least 1");
        assert!(offset < stride, "oid offset must be below the stride");
        self.oid_stride.store(stride, Ordering::Release);
        self.oid_offset.store(offset, Ordering::Release);
    }

    /// The underlying log (exposed for benchmarks and tests).
    pub fn log(&self) -> &Log<D> {
        &self.log
    }

    /// True if `ctx` carries the drive's administrative credential.
    pub fn is_admin(&self, ctx: &RequestContext) -> bool {
        ctx.admin_token == Some(self.config.admin_token)
    }

    // ------------------------------------------------------------------
    // Object operations (authorization included; auditing happens in the
    // RPC dispatcher).
    // ------------------------------------------------------------------

    /// Creates an object; the creator receives a full-permission ACL
    /// entry unless an explicit table is supplied.
    pub fn op_create(&self, ctx: &RequestContext, acl: Option<AclTable>) -> Result<ObjectId> {
        let mut inner = self.inner.lock();
        // Round up to the drive's oid residue class (stride 1 / offset 0
        // degenerates to sequential allocation). Array members allocate
        // in disjoint classes so drive-assigned ids route home.
        let (stride, offset) = self.oid_class();
        let oid = if stride <= 1 {
            inner.next_oid
        } else {
            let n = inner.next_oid;
            let rem = n % stride;
            if rem == offset {
                n
            } else {
                n + (offset + stride - rem) % stride
            }
        };
        inner.next_oid = oid + 1;
        let stamp = self.stamps.next();
        let table = acl.unwrap_or_else(|| AclTable::owner_default(ctx.user));
        let mut entry = ObjectEntry::new(ObjectMeta::new(oid, stamp));
        entry.pending.push(JournalEntry::Create { stamp });
        let acl_stamp = self.stamps.next();
        let set = JournalEntry::SetAcl {
            stamp: acl_stamp,
            old: Vec::new(),
            new: table.encode(),
        };
        redo(&mut entry.meta, &set);
        entry.pending.push(set);
        entry.last_used = inner.bump_lru();
        inner.table.insert(oid, Slot::Cached(Box::new(entry)));
        self.stats.versions_created(1);
        Ok(ObjectId(oid))
    }

    /// Deletes an object (its versions remain recoverable for the
    /// detection window).
    pub fn op_delete(&self, ctx: &RequestContext, oid: ObjectId) -> Result<()> {
        self.check_not_reserved(oid)?;
        let mut inner = self.inner.lock();
        let mut entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            self.authorize(ctx, &entry, Perm::OWNER)?;
            if !entry.meta.is_live() {
                return Err(S4Error::NoSuchObject);
            }
            let e = JournalEntry::Delete {
                stamp: self.stamps.next(),
            };
            redo(&mut entry.meta, &e);
            entry.pending.push(e);
            entry.dirty = true;
            self.stats.versions_created(1);
            Ok(())
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Reads `len` bytes at `offset`, optionally from the version current
    /// at `time` (Table 1: time-based access).
    pub fn op_read(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        offset: u64,
        len: u64,
        time: Option<SimTime>,
    ) -> Result<Vec<u8>> {
        if oid == AUDIT_OBJECT {
            return self.read_audit_raw(ctx, offset, len);
        }
        let mut inner = self.inner.lock();
        let entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            let meta = match time {
                None => {
                    self.authorize(ctx, &entry, Perm::READ)?;
                    if !entry.meta.is_live() {
                        return Err(S4Error::NoSuchObject);
                    }
                    entry.meta.clone()
                }
                Some(t) => {
                    self.stats.time_based_reads(1);
                    let meta = self.version_at(&entry, t)?;
                    self.authorize_historical(ctx, &entry, &meta)?;
                    if !meta.is_live() {
                        return Err(S4Error::NoSuchObject);
                    }
                    meta
                }
            };
            self.read_extent(&entry, &meta, offset, len)
        })();
        self.put_back(&mut inner, entry);
        if let Ok(data) = &r {
            self.stats.bytes_read(data.len() as u64);
        }
        r
    }

    /// Writes `data` at `offset`, creating a new version.
    pub fn op_write(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.check_not_reserved(oid)?;
        self.throttle(ctx, data.len() as u64);
        let mut inner = self.inner.lock();
        let mut entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            self.authorize(ctx, &entry, Perm::WRITE)?;
            if !entry.meta.is_live() {
                return Err(S4Error::NoSuchObject);
            }
            self.write_extent(&mut inner, &mut entry, offset, data)
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Appends `data` at the end of the object, returning the new size.
    pub fn op_append(&self, ctx: &RequestContext, oid: ObjectId, data: &[u8]) -> Result<u64> {
        self.check_not_reserved(oid)?;
        self.throttle(ctx, data.len() as u64);
        let mut inner = self.inner.lock();
        let mut entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            self.authorize(ctx, &entry, Perm::WRITE)?;
            if !entry.meta.is_live() {
                return Err(S4Error::NoSuchObject);
            }
            let off = entry.meta.size;
            self.write_extent(&mut inner, &mut entry, off, data)?;
            Ok(entry.meta.size)
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Truncates (or sparsely extends) the object to `new_len` bytes.
    pub fn op_truncate(&self, ctx: &RequestContext, oid: ObjectId, new_len: u64) -> Result<()> {
        self.check_not_reserved(oid)?;
        let mut inner = self.inner.lock();
        let mut entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            self.authorize(ctx, &entry, Perm::WRITE)?;
            if !entry.meta.is_live() {
                return Err(S4Error::NoSuchObject);
            }
            self.truncate_inner(&mut inner, &mut entry, new_len)
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Returns object attributes, optionally of a historical version.
    pub fn op_getattr(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        time: Option<SimTime>,
    ) -> Result<ObjectAttrs> {
        let mut inner = self.inner.lock();
        let entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            let meta = match time {
                None => {
                    self.authorize(ctx, &entry, Perm::READ)?;
                    if !entry.meta.is_live() {
                        return Err(S4Error::NoSuchObject);
                    }
                    entry.meta.clone()
                }
                Some(t) => {
                    self.stats.time_based_reads(1);
                    let meta = self.version_at(&entry, t)?;
                    self.authorize_historical(ctx, &entry, &meta)?;
                    meta
                }
            };
            Ok(ObjectAttrs {
                size: meta.size,
                created: meta.created.time,
                modified: meta.modified.time,
                deleted: meta.deleted.map(|d| d.time),
                opaque: meta.attrs,
            })
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Replaces the opaque attribute blob.
    pub fn op_setattr(&self, ctx: &RequestContext, oid: ObjectId, attrs: Vec<u8>) -> Result<()> {
        self.check_not_reserved(oid)?;
        self.throttle(ctx, attrs.len() as u64);
        let mut inner = self.inner.lock();
        let mut entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            self.authorize(ctx, &entry, Perm::WRITE)?;
            if !entry.meta.is_live() {
                return Err(S4Error::NoSuchObject);
            }
            let e = JournalEntry::SetAttr {
                stamp: self.stamps.next(),
                old: entry.meta.attrs.clone(),
                new: attrs,
            };
            redo(&mut entry.meta, &e);
            entry.pending.push(e);
            entry.dirty = true;
            self.stats.versions_created(1);
            Ok(())
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Looks up the ACL entry for `user`, optionally in a historical
    /// version.
    pub fn op_get_acl_by_user(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        user: crate::ids::UserId,
        time: Option<SimTime>,
    ) -> Result<Option<AclEntry>> {
        self.acl_table_at(ctx, oid, time).map(|t| t.get_user(user))
    }

    /// Looks up the ACL entry at table index `idx`, optionally in a
    /// historical version.
    pub fn op_get_acl_by_index(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        idx: u32,
        time: Option<SimTime>,
    ) -> Result<Option<AclEntry>> {
        self.acl_table_at(ctx, oid, time)
            .map(|t| t.get_index(idx as usize))
    }

    /// Installs (or clears, when the permission bits are empty) one ACL
    /// entry.
    pub fn op_set_acl(&self, ctx: &RequestContext, oid: ObjectId, acl: AclEntry) -> Result<()> {
        self.check_not_reserved(oid)?;
        let mut inner = self.inner.lock();
        let mut entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            self.authorize(ctx, &entry, Perm::OWNER)?;
            if !entry.meta.is_live() {
                return Err(S4Error::NoSuchObject);
            }
            let mut table = AclTable::decode(&entry.meta.acl)?;
            table.set(acl);
            let e = JournalEntry::SetAcl {
                stamp: self.stamps.next(),
                old: entry.meta.acl.clone(),
                new: table.encode(),
            };
            redo(&mut entry.meta, &e);
            entry.pending.push(e);
            entry.dirty = true;
            self.stats.versions_created(1);
            Ok(())
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Associates `name` with an existing object (persistent mount
    /// points, §4.1).
    pub fn op_pcreate(&self, _ctx: &RequestContext, name: &str, oid: ObjectId) -> Result<()> {
        if name.is_empty() || name.len() > 255 {
            return Err(S4Error::BadRequest("partition name length"));
        }
        let mut inner = self.inner.lock();
        // The target must exist.
        self.ensure_cached(&mut inner, oid)?;
        let mut parts = self.read_partitions(&mut inner, None)?;
        if parts.iter().any(|(n, _)| n == name) {
            return Err(S4Error::PartitionExists);
        }
        parts.push((name.to_string(), oid.0));
        self.write_partitions(&mut inner, &parts)
    }

    /// Removes a name/ObjectID association.
    pub fn op_pdelete(&self, _ctx: &RequestContext, name: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        let mut parts = self.read_partitions(&mut inner, None)?;
        let before = parts.len();
        parts.retain(|(n, _)| n != name);
        if parts.len() == before {
            return Err(S4Error::NoSuchPartition);
        }
        self.write_partitions(&mut inner, &parts)
    }

    /// Lists partitions, optionally as of `time`.
    pub fn op_plist(
        &self,
        _ctx: &RequestContext,
        time: Option<SimTime>,
    ) -> Result<Vec<(String, ObjectId)>> {
        let mut inner = self.inner.lock();
        if time.is_some() {
            self.stats.time_based_reads(1);
        }
        Ok(self
            .read_partitions(&mut inner, time)?
            .into_iter()
            .map(|(n, o)| (n, ObjectId(o)))
            .collect())
    }

    /// Resolves a partition name to its ObjectID, optionally as of
    /// `time`.
    pub fn op_pmount(
        &self,
        _ctx: &RequestContext,
        name: &str,
        time: Option<SimTime>,
    ) -> Result<ObjectId> {
        let mut inner = self.inner.lock();
        if time.is_some() {
            self.stats.time_based_reads(1);
        }
        self.read_partitions(&mut inner, time)?
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, o)| ObjectId(o))
            .ok_or(S4Error::NoSuchPartition)
    }

    /// Makes everything written so far durable (NFSv2 clients call this
    /// after every mutating operation).
    pub fn op_sync(&self, _ctx: &RequestContext) -> Result<()> {
        let mut inner = self.inner.lock();
        self.sync_locked(&mut inner)
    }

    /// Administrative: adjusts the guaranteed detection window.
    pub fn op_set_window(&self, ctx: &RequestContext, window: SimDuration) -> Result<()> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        self.inner.lock().window = window;
        Ok(())
    }

    /// Administrative retention for the append-only alert object
    /// (ROADMAP open item): releases flushed alert blocks whose *newest*
    /// blob is strictly older than the detection window. In-window
    /// alerts and the buffered tail are untouched, and the stream keeps
    /// absolute block numbering (see [`AlertState::flushed_blocks`]) so
    /// outstanding [`AlertCursor`]s remain valid. Returns the number of
    /// blocks released back to the free pool.
    pub fn op_flush_alerts(&self, ctx: &RequestContext) -> Result<u64> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut inner = self.inner.lock();
        let cutoff = self
            .clock
            .now()
            .as_micros()
            .saturating_sub(inner.window.as_micros());
        let k = self.retention_prefix(&inner.alerts.blocks, cutoff, alert_blob_time)?;
        let freed = inner.alerts.truncate_front(k);
        Ok(self.release_reserved_blocks(&mut inner, freed))
    }

    /// Administrative retention for the persisted flight-recorder
    /// stream: same policy as [`S4Drive::op_flush_alerts`], applied to
    /// the reserved trace object.
    pub fn op_flush_traces(&self, ctx: &RequestContext) -> Result<u64> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut inner = self.inner.lock();
        let cutoff = self
            .clock
            .now()
            .as_micros()
            .saturating_sub(inner.window.as_micros());
        let k = self.retention_prefix(&inner.traces.blocks, cutoff, trace_blob_time)?;
        let freed = inner.traces.truncate_front(k);
        Ok(self.release_reserved_blocks(&mut inner, freed))
    }

    /// Longest prefix of `blocks` whose newest blob timestamp is
    /// strictly below `cutoff_us`. Blob times are monotone across the
    /// stream, so a block whose newest entry is in-window ends the scan.
    fn retention_prefix(
        &self,
        blocks: &[BlockAddr],
        cutoff_us: u64,
        blob_time: fn(&[u8]) -> u64,
    ) -> Result<usize> {
        let mut k = 0;
        for &addr in blocks {
            let blobs = AlertState::decode_block(&self.log.read_block(addr)?)?;
            let newest = blobs.iter().map(|b| blob_time(b)).max().unwrap_or(0);
            if newest >= cutoff_us {
                break;
            }
            k += 1;
        }
        Ok(k)
    }

    /// Drops truncated reserved-object blocks from the live set and
    /// returns them to the log's free pool.
    fn release_reserved_blocks(&self, inner: &mut Inner, freed: Vec<BlockAddr>) -> u64 {
        for a in &freed {
            inner.live.remove(&a.0);
        }
        self.log.release_blocks(freed.iter().copied());
        freed.len() as u64
    }

    /// Administrative: removes all versions of all objects whose creating
    /// mutation falls in `[from, to]`.
    pub fn op_flush(&self, ctx: &RequestContext, from: SimTime, to: SimTime) -> Result<()> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut inner = self.inner.lock();
        let oids: Vec<u64> = inner.table.keys().copied().collect();
        for oid in oids {
            self.flush_object_range(&mut inner, ObjectId(oid), from, to)?;
        }
        Ok(())
    }

    /// Administrative: removes versions of one object in `[from, to]`.
    pub fn op_flusho(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        from: SimTime,
        to: SimTime,
    ) -> Result<()> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut inner = self.inner.lock();
        self.flush_object_range(&mut inner, oid, from, to)
    }

    /// Decodes every record currently in the audit log (admin only).
    pub fn read_audit_records(
        &self,
        ctx: &RequestContext,
    ) -> Result<Vec<crate::audit::AuditRecord>> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for &addr in &inner.audit.blocks {
            let block = self.log.read_block(addr)?;
            out.extend(AuditState::decode_block(&block)?);
        }
        // Plus the buffered tail.
        let mut off = 0;
        while off + crate::audit::RECORD_BYTES <= inner.audit.pending.len() {
            out.push(crate::audit::AuditRecord::decode(
                &inner.audit.pending[off..off + crate::audit::RECORD_BYTES],
            )?);
            off += crate::audit::RECORD_BYTES;
        }
        Ok(out)
    }

    /// Appends one audit record (called by the RPC dispatcher), then
    /// feeds it to any registered online detectors and persists the
    /// alerts they raise.
    pub(crate) fn audit_append(&self, rec: &crate::audit::AuditRecord) {
        if !self.config.audit_enabled {
            return;
        }
        {
            let mut inner = self.inner.lock();
            self.stats.audit_records(1);
            let full_blocks = inner.audit.push(rec);
            for payload in full_blocks {
                let idx = inner.audit.blocks.len() as u64;
                if let Ok(addr) = self.log.append(
                    BlockTag::new(BlockKind::Audit, AUDIT_OBJECT.0, idx),
                    &payload,
                ) {
                    inner.audit.blocks.push(addr);
                    inner.live.insert(addr.0);
                    self.stats.audit_blocks(1);
                }
            }
        }
        // Online detection: run outside the inner lock so persisting
        // alerts can re-enter the drive.
        let mut raised: Vec<Vec<u8>> = Vec::new();
        {
            let mut observers = self.observers.lock();
            for obs in observers.iter_mut() {
                raised.extend(obs.on_record(rec));
            }
        }
        for blob in raised {
            self.alert_append(&blob);
        }
    }

    /// Registers an online detector. Every subsequently audited request
    /// is passed to it; returned blobs land in the alert object.
    pub fn register_audit_observer(&self, obs: Box<dyn AuditObserver>) {
        self.observers.lock().push(obs);
    }

    /// Appends one alert blob to the reserved alert object (drive
    /// front-end only — there is no client RPC that reaches this).
    pub(crate) fn alert_append(&self, blob: &[u8]) {
        let mut inner = self.inner.lock();
        self.alert_append_locked(&mut inner, blob);
        // Alert-object growth warning (ROADMAP retention item): the
        // object is append-only, so a chatty detector can grow it
        // without bound. When it reaches the configured block
        // threshold, persist one self-alert — through the same
        // tamper-evident channel the operator already polls — so the
        // pressure is visible before the pool fills. Fires once per
        // mount.
        let warn = self.config.alert_warn_blocks;
        if warn > 0 && !inner.alert_growth_warned && inner.alerts.blocks.len() as u64 >= warn {
            inner.alert_growth_warned = true;
            let msg = format!(
                "alert object reached {} flushed blocks (warn threshold {})",
                inner.alerts.blocks.len(),
                warn
            );
            let self_alert = encode_growth_alert(self.clock.now().as_micros(), msg.as_bytes());
            self.alert_append_locked(&mut inner, &self_alert);
        }
    }

    fn alert_append_locked(&self, inner: &mut Inner, blob: &[u8]) {
        let spilled = match inner.alerts.push(blob) {
            Ok(s) => s,
            Err(_) => return, // oversized blob: drop rather than poison the log
        };
        if let Some(payload) = spilled {
            let idx = inner.alerts.blocks.len() as u64;
            if let Ok(addr) = self.log.append(
                BlockTag::new(BlockKind::Audit, ALERT_OBJECT.0, idx),
                &payload,
            ) {
                inner.alerts.blocks.push(addr);
                inner.live.insert(addr.0);
            }
        }
    }

    /// Records one per-request trace: always into the in-memory ring,
    /// and (when [`DriveConfig::flight_recorder`] is set) appended to
    /// the reserved trace object so the stream's prefix survives power
    /// loss. The persisted stream assigns `seq` — record `i` of the
    /// stream always carries seq `i`, which recovery re-derives from
    /// block contents, so forensics can detect gaps.
    pub(crate) fn record_dispatch(&self, rec: TraceRecord) {
        self.obs.rpc_hist.record(rec.rpc_us);
        if rec.journal_us > 0 {
            self.obs.journal_hist.record(rec.journal_us);
        }
        if rec.lfs_us > 0 {
            self.obs.lfs_hist.record(rec.lfs_us);
        }
        if rec.disk_us > 0 {
            self.obs.disk_hist.record(rec.disk_us);
        }
        if rec.trace_id != 0 {
            self.obs.registry.offer_exemplar(s4_obs::Exemplar {
                trace_id: rec.trace_id,
                time_us: rec.time_us,
                op: rec.op,
                object: rec.object,
                rpc_us: rec.rpc_us,
            });
        }
        self.persist_trace(rec);
    }

    /// Writes a synthetic v2 trace record for a distributed-protocol
    /// step that does not flow through [`dispatch`](Self::dispatch) —
    /// a 2PC decision, a coordinator note install, or a reshard
    /// catch-up apply. No-op on an untraced context: the persisted
    /// stream (and the torture predictor over it) only grows when a
    /// caller opted into tracing. Latency histograms and exemplars are
    /// left alone — phase records annotate causality, they are not
    /// client-visible requests.
    pub fn record_phase_trace(
        &self,
        ctx: &RequestContext,
        op: OpKind,
        object: ObjectId,
        ok: bool,
        rpc_us: u64,
    ) {
        if ctx.trace.trace_id == 0 {
            return;
        }
        self.persist_trace(TraceRecord {
            seq: 0, // assigned by the persisted stream
            time_us: self.now().as_micros(),
            user: ctx.user.0,
            client: ctx.client.0,
            op: op as u8,
            ok,
            object: object.0,
            rpc_us,
            journal_us: 0,
            lfs_us: 0,
            disk_us: 0,
            trace_id: ctx.trace.trace_id,
            origin: ctx.trace.origin,
            phase: ctx.trace.phase,
        });
    }

    /// Assigns the stream sequence number and persists one trace record
    /// (ring always; spill blocks when the flight recorder is on).
    fn persist_trace(&self, mut rec: TraceRecord) {
        if self.config.flight_recorder {
            let mut inner = self.inner.lock();
            rec.seq = inner.traces.total_alerts;
            let blob = rec.encode();
            if let Ok(Some(payload)) = inner.traces.push(&blob) {
                let idx = inner.traces.blocks.len() as u64;
                if let Ok(addr) = self.log.append(
                    BlockTag::new(BlockKind::Audit, TRACE_OBJECT.0, idx),
                    &payload,
                ) {
                    inner.traces.blocks.push(addr);
                    inner.live.insert(addr.0);
                }
            }
        } else {
            rec.seq = self.obs.recorder.total();
        }
        self.obs.recorder.push(rec);
    }

    /// Reads the persisted flight-recorder stream (admin only), oldest
    /// first: flushed trace blocks, then the in-memory pending tail.
    pub fn read_traces(&self, ctx: &RequestContext) -> Result<Vec<TraceRecord>> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let inner = self.inner.lock();
        let mut out = Vec::new();
        let mut decode_blobs = |blobs: Vec<Vec<u8>>| -> Result<()> {
            for b in blobs {
                out.push(
                    TraceRecord::decode(&b).ok_or(S4Error::BadRequest("malformed trace record"))?,
                );
            }
            Ok(())
        };
        for &addr in &inner.traces.blocks {
            let block = self.log.read_block(addr)?;
            decode_blobs(AlertState::decode_block(&block)?)?;
        }
        decode_blobs(AlertState::decode_block(&inner.traces.pending)?)?;
        Ok(out)
    }

    /// The in-memory flight-recorder ring: the last N dispatched
    /// requests with per-layer timings (unauthenticated — it exposes
    /// aggregate operational data, not object contents).
    pub fn flight_recent(&self) -> Vec<TraceRecord> {
        self.obs.recorder.recent()
    }

    /// The drive's metrics registry; every layer's counters, gauges,
    /// and latency histograms report here.
    pub fn registry(&self) -> &Registry {
        &self.obs.registry
    }

    /// Prometheus-style text exposition of every drive metric, with
    /// operational gauges refreshed first.
    pub fn metrics_text(&self) -> String {
        self.refresh_gauges();
        self.obs.registry.render_prometheus()
    }

    /// JSON exposition of every drive metric, with operational gauges
    /// refreshed first.
    pub fn metrics_json(&self) -> String {
        self.refresh_gauges();
        self.obs.registry.render_json()
    }

    /// Recomputes the operational gauges the paper's admin story cares
    /// about (§3.6, §5): history-pool occupancy, detection-window
    /// headroom, journal depth, and the reserved-object sizes.
    fn refresh_gauges(&self) {
        let reg = &self.obs.registry;
        reg.gauge(
            "s4_history_pool_occupancy",
            "fraction of data-area blocks referenced (current + history)",
        )
        .set(self.log.utilization());
        reg.gauge("s4_free_segments", "free log segments remaining")
            .set(self.log.free_segments() as f64);

        let (journal_depth, audit_blocks, alert_blocks, trace_blocks, objects, window_us) = {
            let inner = self.inner.lock();
            let depth: usize = inner
                .table
                .values()
                .map(|s| match s {
                    Slot::Cached(e) => e.pending.len(),
                    _ => 0,
                })
                .sum();
            (
                depth,
                inner.audit.blocks.len(),
                inner.alerts.blocks.len(),
                inner.traces.blocks.len(),
                inner.table.len(),
                inner.window.as_micros(),
            )
        };
        reg.gauge(
            "s4_journal_depth",
            "journal entries pending (not yet packed) across cached objects",
        )
        .set(journal_depth as f64);
        reg.gauge("s4_audit_object_blocks", "flushed audit-log blocks")
            .set(audit_blocks as f64);
        reg.gauge("s4_alert_object_blocks", "flushed alert-object blocks")
            .set(alert_blocks as f64);
        reg.gauge("s4_trace_object_blocks", "flushed flight-recorder blocks")
            .set(trace_blocks as f64);
        reg.gauge("s4_objects", "objects in the drive's object table")
            .set(objects as f64);
        reg.gauge(
            "s4_detection_window_days",
            "configured guaranteed detection window, days",
        )
        .set(window_us as f64 / 86_400e6);

        // Detection-window headroom: how long the *free* pool lasts at
        // the observed write rate — the same projection as
        // `s4_capacity::detection_window_days(pool_gb, write_mb_per_day,
        // space_factor)` with space_factor 1.0 (raw versions; the
        // conservative bound). Clamped to 100 years when no write rate
        // is observable yet.
        const MAX_HEADROOM_DAYS: f64 = 36_500.0;
        let elapsed_days = self.clock.now().as_micros() as f64 / 86_400e6;
        let written_mb = self.stats.snapshot().bytes_written as f64 / (1u64 << 20) as f64;
        let rate_mb_per_day = if elapsed_days > 0.0 {
            written_mb / elapsed_days
        } else {
            0.0
        };
        reg.gauge(
            "s4_write_mb_per_day",
            "observed object write rate, MB per simulated day",
        )
        .set(rate_mb_per_day);
        let free_bytes = self.log.free_segments() as f64
            * self.config.log.blocks_per_segment as f64
            * BLOCK_SIZE as f64;
        let headroom = if rate_mb_per_day > 1e-9 {
            (free_bytes / (1u64 << 30) as f64 * 1024.0 / rate_mb_per_day).min(MAX_HEADROOM_DAYS)
        } else {
            MAX_HEADROOM_DAYS
        };
        reg.gauge(
            "s4_detection_window_headroom_days",
            "days the free history pool lasts at the observed write rate (space_factor 1.0)",
        )
        .set(headroom);
    }

    /// Reads every persisted alert blob (admin only), oldest first.
    pub fn read_alerts(&self, ctx: &RequestContext) -> Result<Vec<Vec<u8>>> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for &addr in &inner.alerts.blocks {
            let block = self.log.read_block(addr)?;
            out.extend(AlertState::decode_block(&block)?);
        }
        out.extend(AlertState::decode_block(&inner.alerts.pending)?);
        Ok(out)
    }

    /// Reads only the alert blobs appended since `cursor` (admin only),
    /// oldest first, and advances the cursor — repeated polls are
    /// incremental instead of rescanning every alert block.
    ///
    /// The cursor exploits the spill discipline of the alert object:
    /// when the pending tail spills (or is persisted at anchor), the
    /// previously buffered blobs form the *prefix* of the newly flushed
    /// block, so `tail_blobs` carries over as a skip count into the
    /// first unread block. A cursor that is ahead of the drive (e.g.
    /// reused across a crash that lost un-anchored alert blocks) resets
    /// and rereads from the start.
    pub fn read_alerts_from(
        &self,
        ctx: &RequestContext,
        cursor: &mut AlertCursor,
    ) -> Result<Vec<Vec<u8>>> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let inner = self.inner.lock();
        // Cursors count *absolute* stream blocks: retention truncation
        // (`FlushAlerts`) removes old blocks from the front without
        // renumbering what remains.
        let flushed = inner.alerts.flushed_blocks as usize;
        let total = flushed + inner.alerts.blocks.len();
        if cursor.blocks > total {
            *cursor = AlertCursor::default();
        }
        let mut out = Vec::new();
        let mut skip = if cursor.blocks >= flushed {
            cursor.tail_blobs
        } else {
            // The cursor's resume block was truncated by retention; the
            // blobs it had consumed are gone, so resume at the surviving
            // front without a partial-block skip.
            0
        };
        let start = cursor.blocks.saturating_sub(flushed);
        for (i, &addr) in inner.alerts.blocks.iter().enumerate().skip(start) {
            let blobs = AlertState::decode_block(&self.log.read_block(addr)?)?;
            let s = if flushed + i == cursor.blocks {
                skip.min(blobs.len())
            } else {
                0
            };
            out.extend(blobs.into_iter().skip(s));
        }
        if total > cursor.blocks {
            // The old tail spilled into the first unread block above.
            skip = 0;
        }
        let tail = AlertState::decode_block(&inner.alerts.pending)?;
        cursor.tail_blobs = tail.len();
        cursor.blocks = total;
        out.extend(tail.into_iter().skip(skip.min(cursor.tail_blobs)));
        Ok(out)
    }

    /// Deterministic digest of the drive's logical state: the object
    /// table (metadata, sector lists, forwarding/delta maps, landmarks,
    /// history floors, pending journal entries), the audit and alert
    /// logs, and the id allocator. Two mounts of the same device image
    /// must produce equal digests — the torture harness's journal-replay
    /// idempotence invariant. FNV-1a over a canonical (oid-sorted)
    /// serialization; caches, statistics, and LRU state are excluded.
    pub fn state_digest(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, b: &[u8]) {
                for &x in b {
                    self.0 = (self.0 ^ x as u64).wrapping_mul(FNV_PRIME);
                }
            }
            fn u64(&mut self, v: u64) {
                self.bytes(&v.to_le_bytes());
            }
            fn stamp(&mut self, s: HybridTimestamp) {
                self.u64(s.time.as_micros());
                self.u64(s.seq);
            }
        }
        let inner = self.inner.lock();
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.u64(inner.next_oid);
        h.u64(inner.window.as_micros());
        let mut oids: Vec<u64> = inner.table.keys().copied().collect();
        oids.sort_unstable();
        for oid in oids {
            h.u64(oid);
            match &inner.table[&oid] {
                Slot::Cached(entry) => {
                    h.u64(1);
                    h.bytes(&entry.encode());
                    h.u64(entry.pending.len() as u64);
                    let mut buf = Vec::new();
                    for e in &entry.pending {
                        e.encode_into(&mut buf);
                    }
                    h.bytes(&buf);
                }
                Slot::Evicted(info) => {
                    h.u64(2);
                    h.u64(info.checkpoint_root.0);
                    h.u64(info.checkpoint_slot as u64);
                    h.stamp(info.expiry_hint);
                    h.u64(info.deleted.is_some() as u64);
                    if let Some(d) = info.deleted {
                        h.stamp(d);
                    }
                }
            }
        }
        h.u64(inner.audit.blocks.len() as u64);
        for a in &inner.audit.blocks {
            h.u64(a.0);
        }
        h.bytes(&inner.audit.pending);
        h.u64(inner.audit.total_records);
        h.u64(inner.alerts.blocks.len() as u64);
        for a in &inner.alerts.blocks {
            h.u64(a.0);
        }
        h.bytes(&inner.alerts.pending);
        h.u64(inner.alerts.total_alerts);
        h.u64(inner.alerts.flushed_blocks);
        h.u64(inner.traces.blocks.len() as u64);
        for a in &inner.traces.blocks {
            h.u64(a.0);
        }
        h.bytes(&inner.traces.pending);
        h.u64(inner.traces.total_alerts);
        h.u64(inner.traces.flushed_blocks);
        // Unresolved-transaction state (the log object itself is hashed
        // with the table; this covers the derived pending/lock maps so
        // a rebuild divergence shows up as a digest mismatch).
        h.u64(inner.txn_pending.len() as u64);
        for (txid, p) in &inner.txn_pending {
            h.u64(*txid);
            h.u64(p.t0_us);
            match &p.touched {
                None => h.u64(0),
                Some((oids, names)) => {
                    h.u64(1);
                    h.u64(oids.len() as u64);
                    for o in oids {
                        h.u64(*o);
                    }
                    h.u64(names.len() as u64);
                    for n in names {
                        h.u64(n.len() as u64);
                        h.bytes(n.as_bytes());
                    }
                }
            }
        }
        h.u64(inner.txn_locks.len() as u64);
        for (o, t) in &inner.txn_locks {
            h.u64(*o);
            h.u64(*t);
        }
        h.0
    }

    /// Total records ever appended to the audit log (admin only). A
    /// mismatch against the decodable record count exposes an audit
    /// coverage gap (records lost with the volatile tail in a crash).
    pub fn audit_total_records(&self, ctx: &RequestContext) -> Result<u64> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        Ok(self.inner.lock().audit.total_records)
    }

    // ------------------------------------------------------------------
    // Mirror resync: exporting one member's logical state and replaying
    // it onto a replacement drive (DESIGN §6g).
    // ------------------------------------------------------------------

    /// Raises a drive-originated alert (severity 2, no user/client)
    /// through the tamper-evident alert object — the channel redundancy
    /// layers use to surface member death and degraded mode, so the
    /// operator's existing alert poll sees infrastructure faults too.
    pub fn system_alert(&self, rule: &str, message: &str) {
        let blob = encode_system_alert(
            rule.as_bytes(),
            self.clock.now().as_micros(),
            message.as_bytes(),
        );
        self.alert_append(&blob);
    }

    /// Exports the drive's logical state for mirror resync (admin only):
    /// every live object's current version plus the raw audit, alert,
    /// and trace streams. Deleted objects and expired history are *not*
    /// exported — clients observe `NoSuchObject` either way, and the
    /// replacement member starts its history pool from the survivor's
    /// present (the paper's window guarantee is per-drive; a rebuilt
    /// member's window restarts at the rebuild).
    pub fn resync_image(&self, ctx: &RequestContext) -> Result<ResyncImage> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut inner = self.inner.lock();
        let mut oids: Vec<u64> = inner.table.keys().copied().collect();
        oids.sort_unstable();
        let mut objects = Vec::new();
        for oid in oids {
            let entry = self.take_cached(&mut inner, ObjectId(oid))?;
            let r = (|| -> Result<Option<ResyncObject>> {
                if !entry.meta.is_live() {
                    return Ok(None); // deleted: not replayed
                }
                let content = self.read_extent(&entry, &entry.meta, 0, entry.meta.size)?;
                Ok(Some(ResyncObject {
                    oid,
                    created: entry.meta.created.time,
                    modified: entry.meta.modified.time,
                    content,
                    attrs: entry.meta.attrs.clone(),
                    acl: entry.meta.acl.clone(),
                }))
            })();
            self.put_back(&mut inner, entry);
            if let Some(obj) = r? {
                objects.push(obj);
            }
        }
        let read_stream = |blocks: &[BlockAddr],
                               pending: &[u8],
                               total: u64,
                               flushed: u64|
         -> Result<ResyncStream> {
            let mut out = Vec::with_capacity(blocks.len());
            for &addr in blocks {
                out.push(self.log.read_block(addr)?.to_vec());
            }
            Ok(ResyncStream {
                blocks: out,
                pending: pending.to_vec(),
                total,
                flushed_blocks: flushed,
            })
        };
        let audit = read_stream(
            &inner.audit.blocks,
            &inner.audit.pending,
            inner.audit.total_records,
            0,
        )?;
        let alerts = read_stream(
            &inner.alerts.blocks,
            &inner.alerts.pending,
            inner.alerts.total_alerts,
            inner.alerts.flushed_blocks,
        )?;
        let traces = read_stream(
            &inner.traces.blocks,
            &inner.traces.pending,
            inner.traces.total_alerts,
            inner.traces.flushed_blocks,
        )?;
        Ok(ResyncImage {
            next_oid: inner.next_oid,
            window: inner.window,
            objects,
            audit,
            alerts,
            traces,
        })
    }

    /// Formats `dev` and replays `image` onto it: each live object is
    /// recreated with its original creation/modification *times* (the
    /// stamp sequence component is drive-local), and the audit, alert,
    /// and trace streams are copied byte for byte. The result is a
    /// mounted, anchored drive whose client-visible state matches the
    /// image's source — [`S4Drive::object_digest`] verifies the claim
    /// per object.
    pub fn format_from_image(
        dev: D,
        config: DriveConfig,
        clock: SimClock,
        image: &ResyncImage,
    ) -> Result<S4Drive<D>> {
        let drive = Self::format_bare(dev, config, clock)?;
        {
            let mut guard = drive.inner.lock();
            let inner = &mut *guard;
            inner.window = image.window;
            for obj in &image.objects {
                let created = HybridTimestamp::new(obj.created, drive.stamps.next_seq());
                let mut entry = ObjectEntry::new(ObjectMeta::new(obj.oid, created));
                entry.pending.push(JournalEntry::Create { stamp: created });
                if !obj.acl.is_empty() {
                    let set = JournalEntry::SetAcl {
                        stamp: HybridTimestamp::new(obj.created, drive.stamps.next_seq()),
                        old: Vec::new(),
                        new: obj.acl.clone(),
                    };
                    redo(&mut entry.meta, &set);
                    entry.pending.push(set);
                }
                entry.last_used = inner.bump_lru();
                let modified = HybridTimestamp::new(obj.modified, drive.stamps.next_seq());
                if obj.content.is_empty() {
                    // An empty write is a no-op; stamp the modification
                    // time with an empty truncate instead.
                    let e = JournalEntry::Truncate {
                        stamp: modified,
                        old_size: 0,
                        new_size: 0,
                        freed: Vec::new(),
                    };
                    redo(&mut entry.meta, &e);
                    entry.pending.push(e);
                } else {
                    drive.write_extent_stamped(inner, &mut entry, 0, &obj.content, modified)?;
                }
                if !obj.attrs.is_empty() {
                    let e = JournalEntry::SetAttr {
                        stamp: HybridTimestamp::new(obj.modified, drive.stamps.next_seq()),
                        old: entry.meta.attrs.clone(),
                        new: obj.attrs.clone(),
                    };
                    redo(&mut entry.meta, &e);
                    entry.pending.push(e);
                }
                entry.dirty = true;
                inner.table.insert(obj.oid, Slot::Cached(Box::new(entry)));
            }
            inner.next_oid = inner.next_oid.max(image.next_oid);

            restore_stream(
                &drive.log,
                &mut inner.live,
                &mut inner.audit.blocks,
                AUDIT_OBJECT.0,
                &image.audit.blocks,
            )?;
            inner.audit.pending = image.audit.pending.clone();
            inner.audit.total_records = image.audit.total;
            restore_stream(
                &drive.log,
                &mut inner.live,
                &mut inner.alerts.blocks,
                ALERT_OBJECT.0,
                &image.alerts.blocks,
            )?;
            inner.alerts.pending = image.alerts.pending.clone();
            inner.alerts.total_alerts = image.alerts.total;
            inner.alerts.flushed_blocks = image.alerts.flushed_blocks;
            restore_stream(
                &drive.log,
                &mut inner.live,
                &mut inner.traces.blocks,
                TRACE_OBJECT.0,
                &image.traces.blocks,
            )?;
            inner.traces.pending = image.traces.pending.clone();
            inner.traces.total_alerts = image.traces.total;
            inner.traces.flushed_blocks = image.traces.flushed_blocks;

            drive.sync_locked(inner)?;
            drive.anchor_locked(inner)?;
        }
        // The image may carry an in-doubt transaction log (a resync
        // racing 2PC is excluded by the array's transaction gate, but a
        // restored image from a crashed member may include one).
        drive.rebuild_txn_state()?;
        Ok(drive)
    }

    /// Digest of one live object's *logical* current version (admin
    /// only): FNV-1a over creation/modification times, size, contents,
    /// attributes, and ACL. Unlike [`S4Drive::state_digest`] it avoids
    /// physical block addresses and sequence numbers, so two mirrored
    /// members — whose layouts differ — can be compared object by object
    /// after a resync.
    pub fn object_digest(&self, ctx: &RequestContext, oid: ObjectId) -> Result<u64> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut inner = self.inner.lock();
        let entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            if !entry.meta.is_live() {
                return Err(S4Error::NoSuchObject);
            }
            let content = self.read_extent(&entry, &entry.meta, 0, entry.meta.size)?;
            const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut eat = |bytes: &[u8]| {
                for &b in bytes {
                    h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
                }
            };
            eat(&entry.meta.created.time.as_micros().to_le_bytes());
            eat(&entry.meta.modified.time.as_micros().to_le_bytes());
            eat(&entry.meta.size.to_le_bytes());
            eat(&content);
            eat(&(entry.meta.attrs.len() as u64).to_le_bytes());
            eat(&entry.meta.attrs);
            eat(&(entry.meta.acl.len() as u64).to_le_bytes());
            eat(&entry.meta.acl);
            Ok(h)
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Ids of every live (non-deleted) object, ascending (admin only) —
    /// the enumeration a resync verification walks, comparing
    /// [`S4Drive::object_digest`] across the mirror pair.
    pub fn live_object_ids(&self, ctx: &RequestContext) -> Result<Vec<u64>> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let inner = self.inner.lock();
        let mut out: Vec<u64> = inner
            .table
            .iter()
            .filter(|(_, slot)| match slot {
                Slot::Cached(e) => e.meta.is_live(),
                Slot::Evicted(info) => info.deleted.is_none(),
            })
            .map(|(&oid, _)| oid)
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Online reshard: snapshot/catch-up readback and stamped replay
    // (DESIGN §6h). These sit next to the resync surface because they
    // move the same logical unit — one object's current (or historical)
    // version — but one object at a time, against a live drive.
    // ------------------------------------------------------------------

    /// The next oid this drive would hand out (admin only). A reshard
    /// flip raises the target's counter to the source's so oids whose
    /// history lives only on the source are never reissued.
    pub fn next_oid(&self, ctx: &RequestContext) -> Result<u64> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        Ok(self.inner.lock().next_oid)
    }

    /// Raises the drive's next-oid counter to at least `v` (admin only).
    /// Never lowers it — oids are single-use for the drive's lifetime.
    pub fn raise_next_oid(&self, ctx: &RequestContext, v: u64) -> Result<()> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut inner = self.inner.lock();
        inner.next_oid = inner.next_oid.max(v);
        Ok(())
    }

    /// Decodes the audit records from sequence number `from` onward
    /// (admin only). The cursor is a record index into the stream that
    /// [`S4Drive::audit_total_records`] counts; persisted audit blocks
    /// are always full (records are block-packed before flush), so whole
    /// blocks below the cursor are skipped without a device read.
    pub fn read_audit_from(&self, ctx: &RequestContext, from: u64) -> Result<Vec<AuditRecord>> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let inner = self.inner.lock();
        let per = (BLOCK_SIZE / crate::audit::RECORD_BYTES) as u64;
        let mut out = Vec::new();
        let mut idx = 0u64;
        for &addr in &inner.audit.blocks {
            if idx + per <= from {
                idx += per;
                continue;
            }
            let block = self.log.read_block(addr)?;
            for rec in AuditState::decode_block(&block)? {
                if idx >= from {
                    out.push(rec);
                }
                idx += 1;
            }
        }
        let mut off = 0;
        while off + crate::audit::RECORD_BYTES <= inner.audit.pending.len() {
            if idx >= from {
                out.push(AuditRecord::decode(
                    &inner.audit.pending[off..off + crate::audit::RECORD_BYTES],
                )?);
            }
            idx += 1;
            off += crate::audit::RECORD_BYTES;
        }
        Ok(out)
    }

    /// Exports one object's logical state for reshard migration (admin
    /// only): the version current now (`at == None`) or at the snapshot
    /// instant (`at == Some(t)`, served from the history pool like any
    /// time-based read). Returns `Ok(None)` if the object does not
    /// exist, is deleted, or had not yet been created at `t` — the
    /// caller treats all three as "nothing to copy". An instant below
    /// the history floor is an error: the snapshot time must sit inside
    /// the detection window.
    pub fn reshard_export(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        at: Option<SimTime>,
    ) -> Result<Option<ResyncObject>> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut inner = self.inner.lock();
        let entry = match self.take_cached(&mut inner, oid) {
            Ok(e) => e,
            Err(S4Error::NoSuchObject) => return Ok(None),
            Err(e) => return Err(e),
        };
        let r = (|| -> Result<Option<ResyncObject>> {
            let meta = match at {
                None => {
                    if !entry.meta.is_live() {
                        return Ok(None);
                    }
                    entry.meta.clone()
                }
                Some(t) => {
                    self.stats.time_based_reads(1);
                    match self.version_at(&entry, t) {
                        Ok(m) if m.is_live() => m,
                        Ok(_) => return Ok(None),
                        Err(S4Error::NoSuchObject) => return Ok(None),
                        Err(e) => return Err(e),
                    }
                }
            };
            let content = self.read_extent(&entry, &meta, 0, meta.size)?;
            Ok(Some(ResyncObject {
                oid: oid.0,
                created: meta.created.time,
                modified: meta.modified.time,
                content,
                attrs: meta.attrs.clone(),
                acl: meta.acl.clone(),
            }))
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Replays one exported object onto this drive (admin only),
    /// preserving its creation/modification *times* so post-reshard
    /// [`S4Drive::object_digest`] comparisons hold (the stamp sequence
    /// component stays drive-local, exactly as in mirror resync). A new
    /// oid is inserted fresh; an existing live object is overwritten in
    /// place with a stamped truncate-and-rewrite. A tombstoned oid is an
    /// error — oids are never reused.
    pub fn reshard_apply(&self, ctx: &RequestContext, obj: &ResyncObject) -> Result<()> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        if !inner.table.contains_key(&obj.oid) {
            let created = HybridTimestamp::new(obj.created, self.stamps.next_seq());
            let mut entry = ObjectEntry::new(ObjectMeta::new(obj.oid, created));
            entry.pending.push(JournalEntry::Create { stamp: created });
            if !obj.acl.is_empty() {
                let set = JournalEntry::SetAcl {
                    stamp: HybridTimestamp::new(obj.created, self.stamps.next_seq()),
                    old: Vec::new(),
                    new: obj.acl.clone(),
                };
                redo(&mut entry.meta, &set);
                entry.pending.push(set);
            }
            entry.last_used = inner.bump_lru();
            let modified = HybridTimestamp::new(obj.modified, self.stamps.next_seq());
            if obj.content.is_empty() {
                let e = JournalEntry::Truncate {
                    stamp: modified,
                    old_size: 0,
                    new_size: 0,
                    freed: Vec::new(),
                };
                redo(&mut entry.meta, &e);
                entry.pending.push(e);
            } else {
                self.write_extent_stamped(inner, &mut entry, 0, &obj.content, modified)?;
            }
            if !obj.attrs.is_empty() {
                let e = JournalEntry::SetAttr {
                    stamp: HybridTimestamp::new(obj.modified, self.stamps.next_seq()),
                    old: entry.meta.attrs.clone(),
                    new: obj.attrs.clone(),
                };
                redo(&mut entry.meta, &e);
                entry.pending.push(e);
            }
            entry.dirty = true;
            inner.table.insert(obj.oid, Slot::Cached(Box::new(entry)));
            inner.next_oid = inner.next_oid.max(obj.oid + 1);
            self.stats.versions_created(1);
            return Ok(());
        }
        let mut entry = self.take_cached(inner, ObjectId(obj.oid))?;
        let r = (|| -> Result<()> {
            if !entry.meta.is_live() {
                return Err(S4Error::BadRequest("reshard apply onto a deleted object"));
            }
            // Wipe, then rewrite, all at the source's modification time.
            // truncate_inner is unusable here: it self-stamps (and its
            // partial-block tail zeroing writes at "now"), which would
            // advance the modification time past the source's.
            let freed: Vec<PtrChange> = entry
                .meta
                .blocks
                .iter()
                .map(|(&lbn, &old)| PtrChange {
                    lbn,
                    old,
                    new: BlockAddr::NONE,
                })
                .collect();
            let e = JournalEntry::Truncate {
                stamp: HybridTimestamp::new(obj.modified, self.stamps.next_seq()),
                old_size: entry.meta.size,
                new_size: 0,
                freed,
            };
            redo(&mut entry.meta, &e);
            entry.pending.push(e);
            if !obj.content.is_empty() {
                self.write_extent_stamped(
                    inner,
                    &mut entry,
                    0,
                    &obj.content,
                    HybridTimestamp::new(obj.modified, self.stamps.next_seq()),
                )?;
            }
            if entry.meta.attrs != obj.attrs {
                let e = JournalEntry::SetAttr {
                    stamp: HybridTimestamp::new(obj.modified, self.stamps.next_seq()),
                    old: entry.meta.attrs.clone(),
                    new: obj.attrs.clone(),
                };
                redo(&mut entry.meta, &e);
                entry.pending.push(e);
            }
            if entry.meta.acl != obj.acl {
                let e = JournalEntry::SetAcl {
                    stamp: HybridTimestamp::new(obj.modified, self.stamps.next_seq()),
                    old: entry.meta.acl.clone(),
                    new: obj.acl.clone(),
                };
                redo(&mut entry.meta, &e);
                entry.pending.push(e);
            }
            entry.dirty = true;
            self.stats.versions_created(1);
            Ok(())
        })();
        self.put_back(inner, entry);
        r
    }

    /// Walks an object's retained journal history, oldest first: one
    /// [`VersionRecord`] per in-window mutation. Requires admin (the
    /// forensic path) or `RECOVERY` permission on the current ACL.
    pub fn version_history(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
    ) -> Result<Vec<VersionRecord>> {
        self.check_not_reserved(oid)?;
        let mut inner = self.inner.lock();
        let entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            if !self.is_admin(ctx) {
                let table = AclTable::decode(&entry.meta.acl)?;
                if !table.perms_of(ctx.user).includes(Perm::RECOVERY) {
                    return Err(S4Error::AccessDenied);
                }
            }
            let mut out = Vec::new();
            for s in &entry.sectors {
                let (_oid, entries) = read_subsector(&self.log, s.addr, s.slot)?;
                for e in &entries {
                    out.push(VersionRecord::from_entry(e));
                }
            }
            for e in &entry.pending {
                out.push(VersionRecord::from_entry(e));
            }
            Ok(out)
        })();
        self.put_back(&mut inner, entry);
        r
    }

    // ------------------------------------------------------------------
    // Maintenance: expiry and cleaning.
    // ------------------------------------------------------------------

    /// Releases every version older than the detection window; returns
    /// the number of blocks released. This is the scan the paper's
    /// cleaner performs over the object map (§4.2.1).
    pub fn expire_versions(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        let now = self.clock.now();
        let window = inner.window;
        let cutoff = HybridTimestamp::upper_bound_at(now.saturating_sub(window));
        let oids: Vec<u64> = inner.table.keys().copied().collect();
        let mut released = 0u64;
        for oid in oids {
            released += self.expire_object(&mut inner, ObjectId(oid), cutoff)?;
        }
        self.stats.expired_blocks(released);
        Ok(released)
    }

    /// Runs one cleaner pass (expiry first, then segment reclamation).
    pub fn clean(&self) -> Result<CleanOutcome> {
        self.expire_versions()?;
        let cb = DriveCallbacks { drive: self };
        let outcome = self
            .cleaner
            .clean_pass(&self.log, &cb)
            .map_err(S4Error::from)?;
        self.stats
            .cleaner_relocations(outcome.blocks_relocated as u64);
        self.stats
            .cleaner_segments((outcome.dead_freed + outcome.copied_segments) as u64);
        Ok(outcome)
    }

    /// Re-encodes history-pool data blocks as cross-version deltas
    /// against their successor versions, releasing the original blocks —
    /// the differencing pass the paper proposes for the S4 cleaner
    /// (§4.2.2). Only deltas smaller than half a block are kept; other
    /// versions stay plain. Returns `(blocks_encoded, blocks_released)`.
    pub fn compact_history(&self) -> Result<(u64, u64)> {
        let mut inner = self.inner.lock();
        // Pack pending entries so the journal reflects every mutation.
        let oids: Vec<u64> = inner.table.keys().copied().collect();
        self.pack_objects(&mut inner, &oids)?;
        let mut encoded = 0u64;
        let mut released = 0u64;
        // Collected payloads: (object, key, base, delta bytes).
        let mut payloads: Vec<(u64, u64, BlockAddr, Vec<u8>)> = Vec::new();
        for oid in oids {
            if oid == AUDIT_OBJECT.0 {
                continue;
            }
            let Ok(entry) = self.take_cached(&mut inner, ObjectId(oid)) else {
                continue;
            };
            // Build per-lbn history chains (oldest first) from the
            // retained journal.
            let mut chains: HashMap<u64, Vec<BlockAddr>> = HashMap::new();
            let mut read_failed = false;
            for s in &entry.sectors {
                let Ok((_o, entries)) = read_subsector(&self.log, s.addr, s.slot) else {
                    read_failed = true;
                    break;
                };
                for e in &entries {
                    let changes = match e {
                        JournalEntry::Write { changes, .. } => changes,
                        JournalEntry::Truncate { freed, .. } => freed,
                        _ => continue,
                    };
                    for c in changes {
                        if !c.old.is_none() {
                            chains.entry(c.lbn).or_default().push(c.old);
                        }
                    }
                }
            }
            if read_failed {
                self.put_back(&mut inner, entry);
                continue;
            }
            for (lbn, olds) in chains {
                // Successor of the newest old is the current block (if
                // any); each older version's successor is the next old.
                let mut seq: Vec<BlockAddr> = olds;
                if let Some(&cur) = entry.meta.blocks.get(&lbn) {
                    seq.push(cur);
                }
                if seq.len() < 2 {
                    continue;
                }
                // Newest-first pairs: (target = seq[i], base = seq[i+1]).
                let mut succ_content: Option<Vec<u8>> = None;
                for i in (0..seq.len() - 1).rev() {
                    let target = entry.resolve_forward(seq[i]);
                    let base = entry.resolve_forward(seq[i + 1]);
                    if target == base
                        || entry.deltas.contains_key(&target.0)
                        || !inner.live.contains(&target.0)
                        || entry.is_landmark_block(target)
                    {
                        succ_content = None;
                        continue;
                    }
                    let base_content = match succ_content.take() {
                        Some(c) => c,
                        None => match self.materialize_block(&entry, base) {
                            Ok(c) => c,
                            Err(_) => continue,
                        },
                    };
                    let Ok(target_content) = self.materialize_block(&entry, target) else {
                        continue;
                    };
                    let delta = s4_delta::diff(&base_content, &target_content);
                    let enc = delta.encode();
                    if enc.len() + 16 <= BLOCK_SIZE / 2 {
                        let mut payload = Vec::with_capacity(16 + enc.len());
                        payload.extend_from_slice(&oid.to_le_bytes());
                        payload.extend_from_slice(&target.0.to_le_bytes());
                        payload.extend_from_slice(&enc);
                        payloads.push((oid, target.0, base, payload));
                    }
                    succ_content = Some(target_content);
                }
            }
            self.put_back(&mut inner, entry);
        }

        // Pack delta payloads into shared blocks and install references.
        let mut batch: Vec<(u64, u64, BlockAddr, Vec<u8>)> = Vec::new();
        let mut used = 6usize;
        let flush = |inner: &mut Inner,
                     batch: &mut Vec<(u64, u64, BlockAddr, Vec<u8>)>,
                     encoded: &mut u64,
                     released: &mut u64|
         -> Result<()> {
            if batch.is_empty() {
                return Ok(());
            }
            let payload =
                encode_container(DBLOCK_MAGIC, batch.iter().map(|(_, _, _, p)| p.as_slice()));
            let addr = self.log.append(
                BlockTag::new(BlockKind::DeltaData, batch[0].0, batch.len() as u64),
                &payload,
            )?;
            inner.live.insert(addr.0);
            inner.dblock_refs.insert(addr.0, batch.len() as u32);
            for (slot, (oid, key, base, _)) in batch.drain(..).enumerate() {
                if let Some(Slot::Cached(entry)) = inner.table.get_mut(&oid) {
                    entry.deltas.insert(
                        key,
                        DeltaRef {
                            base,
                            block: addr,
                            slot: slot as u32,
                        },
                    );
                    entry.needs_checkpoint = true;
                    entry.dirty = true;
                    // The original block's bytes are no longer needed.
                    inner.live.remove(&key);
                    self.log.release_blocks([BlockAddr(key)]);
                    *encoded += 1;
                    *released += 1;
                }
            }
            Ok(())
        };
        for item in payloads {
            let need = 4 + item.3.len();
            if used + need > BLOCK_SIZE {
                flush(&mut inner, &mut batch, &mut encoded, &mut released)?;
                used = 6;
            }
            used += need;
            batch.push(item);
        }
        flush(&mut inner, &mut batch, &mut encoded, &mut released)?;
        self.log.flush()?;
        Ok((encoded, released))
    }

    /// Pins the version of `oid` current at `time` as a *landmark*
    /// (§6's proposed combination with Elephant-style long-term
    /// versioning): the version's metadata is materialized and its blocks
    /// survive detection-window expiry until the landmark is removed.
    /// Requires OWNER permission (or the administrator).
    pub fn op_mark_landmark(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        time: SimTime,
    ) -> Result<()> {
        self.check_not_reserved(oid)?;
        let mut inner = self.inner.lock();
        let mut entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            self.authorize(ctx, &entry, Perm::OWNER)?;
            let meta = self.version_at(&entry, time)?;
            if entry.landmarks.iter().any(|m| m.modified == meta.modified) {
                return Ok(()); // already pinned
            }
            // Materialize any delta-encoded blocks: a landmark must not
            // depend on expirable delta bases.
            let mut meta = meta;
            let lbns: Vec<u64> = meta.blocks.keys().copied().collect();
            for lbn in lbns {
                let addr = meta.blocks[&lbn];
                let resolved = entry.resolve_forward(addr);
                if entry.deltas.contains_key(&resolved.0) {
                    let data = self.materialize_block(&entry, resolved)?;
                    let trimmed = data.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
                    let new = self.log.append(
                        BlockTag::new(BlockKind::Data, entry.meta.id, lbn),
                        &data[..trimmed],
                    )?;
                    inner.live.insert(new.0);
                    meta.blocks.insert(lbn, new);
                } else {
                    meta.blocks.insert(lbn, resolved);
                }
            }
            entry.landmarks.push(meta);
            entry.landmarks.sort_by_key(|m| m.modified);
            entry.needs_checkpoint = true;
            entry.dirty = true;
            Ok(())
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Removes the landmark pinned at exactly `modified` (as reported by
    /// [`S4Drive::landmarks`]); its blocks become ordinary history again
    /// (releasable if no longer referenced).
    pub fn op_unmark_landmark(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        modified: SimTime,
    ) -> Result<()> {
        self.check_not_reserved(oid)?;
        let mut inner = self.inner.lock();
        let mut entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            self.authorize(ctx, &entry, Perm::OWNER)?;
            let before = entry.landmarks.len();
            let removed: Vec<ObjectMeta> = entry
                .landmarks
                .iter()
                .filter(|m| m.modified.time == modified)
                .cloned()
                .collect();
            entry.landmarks.retain(|m| m.modified.time != modified);
            if entry.landmarks.len() == before {
                return Err(S4Error::NoSuchObject);
            }
            // Blocks that only the landmark kept alive: if they are not
            // referenced by current state and their journal entries have
            // already expired, release them now.
            for m in removed {
                for (_lbn, addr) in m.blocks {
                    if entry.is_landmark_block(addr) {
                        continue; // still pinned by another landmark
                    }
                    let current = entry.meta.blocks.values().any(|&a| a == addr);
                    let retained_floor = entry.history_floor;
                    if !current && m.modified <= retained_floor {
                        inner.live.remove(&addr.0);
                        self.log.release_blocks([addr]);
                    }
                }
            }
            entry.needs_checkpoint = true;
            entry.dirty = true;
            Ok(())
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Lists an object's landmark versions as `(modified, size)` pairs.
    pub fn landmarks(&self, ctx: &RequestContext, oid: ObjectId) -> Result<Vec<(SimTime, u64)>> {
        let mut inner = self.inner.lock();
        let entry = self.take_cached(&mut inner, oid)?;
        let r = self.authorize(ctx, &entry, Perm::READ).map(|()| {
            entry
                .landmarks
                .iter()
                .map(|m| (m.modified.time, m.size))
                .collect()
        });
        self.put_back(&mut inner, entry);
        r
    }

    /// Forces an anchor now (used by orderly shutdown, tests, and
    /// experiments that want pending-free segments promoted).
    pub fn force_anchor(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.sync_locked(&mut inner)?;
        self.anchor_locked(&mut inner)
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn check_not_reserved(&self, oid: ObjectId) -> Result<()> {
        if oid == AUDIT_OBJECT || oid == PARTITION_OBJECT || oid == ALERT_OBJECT
            || oid == TRACE_OBJECT || oid == TXN_OBJECT
        {
            return Err(S4Error::AccessDenied);
        }
        Ok(())
    }

    fn throttle(&self, ctx: &RequestContext, bytes: u64) {
        let pressure = self.log.utilization();
        let now = self.clock.now();
        let penalty = self
            .inner
            .lock()
            .throttle
            .on_write(ctx.client.0, bytes, now, pressure);
        if penalty > SimDuration::ZERO {
            self.clock.advance(penalty);
            self.stats.throttle_penalty_us(penalty.as_micros());
        }
    }

    fn authorize(&self, ctx: &RequestContext, entry: &ObjectEntry, need: Perm) -> Result<()> {
        if self.is_admin(ctx) {
            return Ok(());
        }
        let table = AclTable::decode(&entry.meta.acl)?;
        if table.perms_of(ctx.user).includes(need) {
            Ok(())
        } else {
            Err(S4Error::AccessDenied)
        }
    }

    /// History-pool access control (§3.4): the current version needs READ;
    /// an old version additionally needs the Recovery flag in the ACL *of
    /// that version* — or the administrator.
    fn authorize_historical(
        &self,
        ctx: &RequestContext,
        entry: &ObjectEntry,
        version: &ObjectMeta,
    ) -> Result<()> {
        if self.is_admin(ctx) {
            return Ok(());
        }
        let is_current = entry.meta.is_live() && version.modified == entry.meta.modified;
        let table = AclTable::decode(&version.acl)?;
        let need = if is_current {
            Perm::READ
        } else {
            Perm::READ.union(Perm::RECOVERY)
        };
        if table.perms_of(ctx.user).includes(need) {
            Ok(())
        } else {
            Err(S4Error::AccessDenied)
        }
    }

    fn acl_table_at(
        &self,
        ctx: &RequestContext,
        oid: ObjectId,
        time: Option<SimTime>,
    ) -> Result<AclTable> {
        let mut inner = self.inner.lock();
        let entry = self.take_cached(&mut inner, oid)?;
        let r = (|| {
            let meta = match time {
                None => {
                    self.authorize(ctx, &entry, Perm::READ)?;
                    entry.meta.clone()
                }
                Some(t) => {
                    self.stats.time_based_reads(1);
                    let meta = self.version_at(&entry, t)?;
                    self.authorize_historical(ctx, &entry, &meta)?;
                    meta
                }
            };
            AclTable::decode(&meta.acl)
        })();
        self.put_back(&mut inner, entry);
        r
    }

    /// Loads an evicted object back into the cache.
    fn ensure_cached(&self, inner: &mut Inner, oid: ObjectId) -> Result<()> {
        let info = match inner.table.get(&oid.0) {
            None => return Err(S4Error::NoSuchObject),
            Some(Slot::Cached(_)) => return Ok(()),
            Some(Slot::Evicted(info)) => *info,
        };
        let (mut entry, blocks) =
            read_checkpoint_static(&self.log, info.checkpoint_root, info.checkpoint_slot)?;
        entry.checkpoint_root = info.checkpoint_root;
        entry.checkpoint_slot = info.checkpoint_slot;
        entry.checkpoint_blocks = blocks;
        entry.last_used = inner.bump_lru();
        inner.table.insert(oid.0, Slot::Cached(Box::new(entry)));
        Ok(())
    }

    fn take_cached(&self, inner: &mut Inner, oid: ObjectId) -> Result<ObjectEntry> {
        self.ensure_cached(inner, oid)?;
        match inner.table.remove(&oid.0) {
            Some(Slot::Cached(mut e)) => {
                e.last_used = inner.bump_lru();
                Ok(*e)
            }
            _ => Err(S4Error::NoSuchObject),
        }
    }

    fn put_back(&self, inner: &mut Inner, entry: ObjectEntry) {
        inner
            .table
            .insert(entry.meta.id, Slot::Cached(Box::new(entry)));
    }

    /// Reads `[offset, offset+len)` of the given version's data.
    fn read_extent(
        &self,
        entry: &ObjectEntry,
        meta: &ObjectMeta,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>> {
        if offset >= meta.size {
            return Ok(Vec::new());
        }
        let len = len.min(meta.size - offset) as usize;
        let mut out = vec![0u8; len];
        let bs = BLOCK_SIZE as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        for lbn in first..=last {
            let Some(&addr) = meta.blocks.get(&lbn) else {
                continue; // sparse hole reads as zeros
            };
            let block = self.materialize_block(entry, addr)?;
            let block_start = lbn * bs;
            let copy_from = offset.max(block_start);
            let copy_to = (offset + len as u64).min(block_start + bs);
            let src = (copy_from - block_start) as usize..(copy_to - block_start) as usize;
            let dst = (copy_from - offset) as usize..(copy_to - offset) as usize;
            out[dst].copy_from_slice(&block[src]);
        }
        Ok(out)
    }

    /// Fetches the bytes of `addr` for `entry`, materializing through the
    /// forwarding map and any cross-version delta encoding (§4.2.2: "for
    /// subsequent reads of old versions, the data for each block must be
    /// recreated as the entries are traversed").
    fn materialize_block(&self, entry: &ObjectEntry, addr: BlockAddr) -> Result<Vec<u8>> {
        let addr = entry.resolve_forward(addr);
        let Some(&dref) = entry.deltas.get(&addr.0) else {
            return Ok(self.log.read_block(addr)?.to_vec());
        };
        let base = self.materialize_block(entry, dref.base)?;
        let dblock = self.log.read_block(dref.block)?;
        let subs = split_container(DBLOCK_MAGIC, &dblock)?;
        let sub = subs
            .get(dref.slot as usize)
            .ok_or(S4Error::BadRequest("delta slot out of range"))?;
        if sub.len() < 16 {
            return Err(S4Error::BadRequest("delta payload truncated"));
        }
        let delta =
            s4_delta::Delta::decode(&sub[16..]).map_err(|_| S4Error::BadRequest("delta decode"))?;
        let mut data =
            s4_delta::apply(&base, &delta).map_err(|_| S4Error::BadRequest("delta apply"))?;
        data.resize(BLOCK_SIZE, 0);
        Ok(data)
    }

    /// Releases one history block: removes delta encodings, re-bases any
    /// deltas that used this block as their source, drops forwarding, and
    /// frees the storage. Returns blocks released.
    fn release_history_block(
        &self,
        inner: &mut Inner,
        entry: &mut ObjectEntry,
        old: BlockAddr,
    ) -> Result<u64> {
        let key = entry.resolve_forward_and_prune(old);
        // Landmark-pinned blocks survive expiry and flushes.
        if entry.is_landmark_block(key) {
            return Ok(0);
        }
        // Delta-encoded: drop the reference; the real bytes were released
        // when the delta was installed.
        if let Some(dref) = entry.deltas.remove(&key.0) {
            return Ok(self.deref_dblock(inner, dref.block));
        }
        // Blocks whose deltas are based on `key` must be re-materialized
        // before the base disappears.
        let dependents: Vec<u64> = entry
            .deltas
            .iter()
            .filter(|(_, d)| d.base == key)
            .map(|(&k, _)| k)
            .collect();
        let mut released = 0;
        for dep in dependents {
            let data = self.materialize_block(entry, BlockAddr(dep))?;
            let trimmed = data.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
            let new = self.log.append(
                BlockTag::new(BlockKind::Data, entry.meta.id, 0),
                &data[..trimmed],
            )?;
            inner.live.insert(new.0);
            let dref = entry.deltas.remove(&dep).expect("collected above");
            released += self.deref_dblock(inner, dref.block);
            entry.forwards.insert(dep, new.0);
            entry.needs_checkpoint = true;
        }
        inner.live.remove(&key.0);
        self.log.release_blocks([key]);
        Ok(released + 1)
    }

    /// Drops one reference on a shared delta block.
    fn deref_dblock(&self, inner: &mut Inner, block: BlockAddr) -> u64 {
        match inner.dblock_refs.get_mut(&block.0) {
            Some(n) if *n > 1 => {
                *n -= 1;
                0
            }
            _ => {
                inner.dblock_refs.remove(&block.0);
                inner.live.remove(&block.0);
                self.log.release_blocks([block]);
                1
            }
        }
    }

    /// Writes `data` at `offset` as one journaled mutation.
    fn write_extent(
        &self,
        inner: &mut Inner,
        entry: &mut ObjectEntry,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.write_extent_stamped(inner, entry, offset, data, self.stamps.next())
    }

    /// [`S4Drive::write_extent`] with a caller-chosen stamp — resync
    /// replay uses this to reproduce the survivor's mutation *times* on a
    /// replacement drive (the sequence component is still drive-local).
    fn write_extent_stamped(
        &self,
        inner: &mut Inner,
        entry: &mut ObjectEntry,
        offset: u64,
        data: &[u8],
        stamp: HybridTimestamp,
    ) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let bs = BLOCK_SIZE as u64;
        let old_size = entry.meta.size;
        let new_size = old_size.max(offset + data.len() as u64);
        let first = offset / bs;
        let last = (offset + data.len() as u64 - 1) / bs;
        let mut changes = Vec::with_capacity((last - first + 1) as usize);
        for lbn in first..=last {
            let block_start = lbn * bs;
            let copy_from = offset.max(block_start);
            let copy_to = (offset + data.len() as u64).min(block_start + bs);
            let old = entry.meta.blocks.get(&lbn).copied();
            // Build the new block contents, merging with the old block for
            // partial coverage.
            let mut content = if copy_to - copy_from < bs {
                match old {
                    Some(a) => self.materialize_block(entry, a)?,
                    None => vec![0u8; BLOCK_SIZE],
                }
            } else {
                vec![0u8; BLOCK_SIZE]
            };
            content.resize(BLOCK_SIZE, 0);
            let src = (copy_from - offset) as usize..(copy_to - offset) as usize;
            content[(copy_from - block_start) as usize..(copy_to - block_start) as usize]
                .copy_from_slice(&data[src]);
            let new = self
                .log
                .append(BlockTag::new(BlockKind::Data, entry.meta.id, lbn), &content)?;
            inner.live.insert(new.0);
            changes.push(PtrChange {
                lbn,
                old: old.unwrap_or(BlockAddr::NONE),
                new,
            });
        }
        let e = JournalEntry::Write {
            stamp,
            old_size,
            new_size,
            changes,
        };
        redo(&mut entry.meta, &e);
        entry.pending.push(e);
        entry.dirty = true;
        self.stats.versions_created(1);
        self.stats.bytes_written(data.len() as u64);
        Ok(())
    }

    fn truncate_inner(
        &self,
        inner: &mut Inner,
        entry: &mut ObjectEntry,
        new_len: u64,
    ) -> Result<()> {
        let bs = BLOCK_SIZE as u64;
        // Shrinking into the middle of a block must zero the retained
        // block's tail, or the stale bytes would resurface if the file
        // later grows (POSIX truncate semantics).
        if new_len < entry.meta.size && !new_len.is_multiple_of(bs) {
            let lbn = new_len / bs;
            if let Some(&old) = entry.meta.blocks.get(&lbn) {
                let block = self.materialize_block(entry, old)?;
                let rem = (new_len % bs) as usize;
                let mut buf = vec![0u8; BLOCK_SIZE];
                buf[..rem].copy_from_slice(&block[..rem]);
                self.write_extent(inner, entry, lbn * bs, &buf)?;
            }
        }
        let keep_blocks = new_len.div_ceil(bs);
        let freed: Vec<PtrChange> = entry
            .meta
            .blocks
            .range(keep_blocks..)
            .map(|(&lbn, &old)| PtrChange {
                lbn,
                old,
                new: BlockAddr::NONE,
            })
            .collect();
        let e = JournalEntry::Truncate {
            stamp: self.stamps.next(),
            old_size: entry.meta.size,
            new_size: new_len,
            freed,
        };
        redo(&mut entry.meta, &e);
        entry.pending.push(e);
        entry.dirty = true;
        self.stats.versions_created(1);
        Ok(())
    }

    /// Materializes the version of `entry` current at `t`, falling back
    /// to pinned landmark versions for instants below the history floor.
    fn version_at(&self, entry: &ObjectEntry, t: SimTime) -> Result<ObjectMeta> {
        let bound = HybridTimestamp::upper_bound_at(t);
        if bound <= entry.history_floor {
            // The journal no longer reaches t; a landmark may.
            if let Some(m) = entry.landmarks.iter().rev().find(|m| m.modified <= bound) {
                return Ok(m.clone());
            }
            return Err(S4Error::VersionUnavailable);
        }
        let mut meta = entry.meta.clone();
        let mut boundary: Option<HybridTimestamp> = None;
        let mut done = false;
        for e in entry.pending.iter().rev() {
            if e.stamp() <= bound {
                boundary = Some(e.stamp());
                done = true;
                break;
            }
            if !undo(&mut meta, e) {
                return Err(S4Error::NoSuchObject);
            }
        }
        if !done {
            for s in entry.sectors.iter().rev() {
                if s.newest <= bound {
                    boundary = Some(s.newest);
                    break;
                }
                let (_oid, entries) = read_subsector(&self.log, s.addr, s.slot)?;
                for e in entries.iter().rev() {
                    if e.stamp() <= bound {
                        boundary = Some(e.stamp());
                        done = true;
                        break;
                    }
                    if !undo(&mut meta, e) {
                        return Err(S4Error::NoSuchObject);
                    }
                }
                if done {
                    break;
                }
            }
        }
        if meta.created > bound {
            return Err(S4Error::NoSuchObject);
        }
        meta.modified = boundary.unwrap_or(meta.created);
        Ok(meta)
    }

    /// Releases an entry's current checkpoint storage (chain blocks, or
    /// one reference on a shared block).
    fn release_checkpoint(&self, inner: &mut Inner, entry: &mut ObjectEntry) {
        if entry.checkpoint_root.is_none() {
            return;
        }
        if entry.checkpoint_slot != u32::MAX {
            let addr = entry.checkpoint_root;
            match inner.cpblock_refs.get_mut(&addr.0) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    inner.cpblock_refs.remove(&addr.0);
                    inner.live.remove(&addr.0);
                    self.log.release_blocks([addr]);
                }
            }
        } else {
            for old in entry.checkpoint_blocks.drain(..) {
                inner.live.remove(&old.0);
                self.log.release_blocks([old]);
            }
        }
        entry.checkpoint_root = BlockAddr::NONE;
        entry.checkpoint_slot = u32::MAX;
        entry.checkpoint_blocks.clear();
    }

    /// Writes fresh metadata checkpoints for `oids`, packing small blobs
    /// into shared checkpoint blocks (several objects per 4 KiB block,
    /// mirroring the paper's sector-sized on-disk inodes) and spilling
    /// large blobs into dedicated chains.
    fn pack_checkpoints(&self, inner: &mut Inner, oids: &[u64]) -> Result<()> {
        let mut small: Vec<(u64, Vec<u8>)> = Vec::new();
        for &oid in oids {
            let mut entry = match self.take_cached(inner, ObjectId(oid)) {
                Ok(e) => e,
                Err(_) => continue,
            };
            let blob = entry.encode();
            self.release_checkpoint(inner, &mut entry);
            if blob.len() <= SHARED_CP_THRESHOLD {
                small.push((oid, blob));
                entry.dirty = false;
                entry.needs_checkpoint = false;
                self.put_back(inner, entry);
            } else {
                // Dedicated chain, written back-to-front.
                let chunks: Vec<&[u8]> = blob.chunks(CHECKPOINT_CHUNK).collect();
                let mut next = BlockAddr::NONE;
                let mut new_blocks = Vec::with_capacity(chunks.len());
                for (i, chunk) in chunks.iter().enumerate().rev() {
                    let mut payload = Vec::with_capacity(12 + chunk.len());
                    payload.extend_from_slice(&next.0.to_le_bytes());
                    payload.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
                    payload.extend_from_slice(chunk);
                    let addr = self.log.append(
                        BlockTag::new(BlockKind::ObjectCheckpoint, oid, i as u64),
                        &payload,
                    )?;
                    inner.live.insert(addr.0);
                    new_blocks.push(addr);
                    next = addr;
                }
                entry.checkpoint_root = next;
                entry.checkpoint_slot = u32::MAX;
                entry.checkpoint_blocks = new_blocks;
                entry.dirty = false;
                entry.needs_checkpoint = false;
                self.stats.checkpoints(1);
                self.put_back(inner, entry);
            }
        }
        // Pack the small blobs into shared blocks.
        let mut batch: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut used = 6usize;
        let flush = |inner: &mut Inner, batch: &mut Vec<(u64, Vec<u8>)>| -> Result<()> {
            if batch.is_empty() {
                return Ok(());
            }
            let payload = encode_container(CPBLOCK_MAGIC, batch.iter().map(|(_, b)| b.as_slice()));
            let addr = self.log.append(
                BlockTag::new(BlockKind::ObjectCheckpoint, batch[0].0, u64::MAX),
                &payload,
            )?;
            inner.live.insert(addr.0);
            inner.cpblock_refs.insert(addr.0, batch.len() as u32);
            for (slot, (oid, _)) in batch.drain(..).enumerate() {
                if let Some(Slot::Cached(entry)) = inner.table.get_mut(&oid) {
                    entry.checkpoint_root = addr;
                    entry.checkpoint_slot = slot as u32;
                }
                self.stats.checkpoints(1);
            }
            Ok(())
        };
        for (oid, blob) in small {
            let need = 4 + blob.len();
            if used + need > BLOCK_SIZE {
                flush(inner, &mut batch)?;
                used = 6;
            }
            used += need;
            batch.push((oid, blob));
        }
        flush(inner, &mut batch)?;
        Ok(())
    }

    /// Writes a fresh checkpoint for one object (eviction, cleaner
    /// relocation).
    fn write_checkpoint(&self, inner: &mut Inner, entry: &mut ObjectEntry) -> Result<()> {
        let oid = entry.meta.id;
        self.put_back(
            inner,
            std::mem::replace(entry, ObjectEntry::new(ObjectMeta::default())),
        );
        self.pack_checkpoints(inner, &[oid])?;
        *entry = self.take_cached(inner, ObjectId(oid))?;
        Ok(())
    }

    /// Packs the pending journal entries of `oids` into shared journal
    /// blocks (several objects' sectors per 4 KiB block, §4.2.2).
    fn pack_objects(&self, inner: &mut Inner, oids: &[u64]) -> Result<()> {
        // Journal span: simulated time across packing, including any
        // log auto-flush the appends trigger.
        let journal_t0 = self.clock.now().as_micros();
        struct Item {
            oid: u64,
            payload: Vec<u8>,
            oldest: HybridTimestamp,
            newest: HybridTimestamp,
        }
        let mut items: Vec<Item> = Vec::new();
        for &oid in oids {
            let Some(Slot::Cached(entry)) = inner.table.get_mut(&oid) else {
                continue;
            };
            if entry.pending.is_empty() {
                continue;
            }
            for s in encode_sectors(&entry.pending) {
                let payload = s.finish(oid, entry.meta.journal_head);
                items.push(Item {
                    oid,
                    payload,
                    oldest: s.entries.first().expect("non-empty").stamp(),
                    newest: s.entries.last().expect("non-empty").stamp(),
                });
            }
            entry.pending.clear();
            entry.dirty = true;
        }
        if items.is_empty() {
            return Ok(());
        }

        // Greedily fill journal blocks.
        let mut block: Vec<Item> = Vec::new();
        let mut used = 6usize; // magic + count
        let flush = |inner: &mut Inner, block: &mut Vec<Item>| -> Result<()> {
            if block.is_empty() {
                return Ok(());
            }
            let payload =
                encode_container(JBLOCK_MAGIC, block.iter().map(|i| i.payload.as_slice()));
            let addr = self.log.append(
                BlockTag::new(BlockKind::JournalSector, block[0].oid, block.len() as u64),
                &payload,
            )?;
            inner.live.insert(addr.0);
            inner.jblock_refs.insert(addr.0, block.len() as u32);
            for (slot, item) in block.drain(..).enumerate() {
                if let Some(Slot::Cached(entry)) = inner.table.get_mut(&item.oid) {
                    entry.sectors.push(SectorInfo {
                        addr,
                        slot: slot as u32,
                        oldest: item.oldest,
                        newest: item.newest,
                    });
                    entry.meta.journal_head = addr;
                }
                self.stats.journal_sectors(1);
            }
            Ok(())
        };
        for item in items {
            let need = 4 + item.payload.len();
            if used + need > BLOCK_SIZE {
                flush(inner, &mut block)?;
                used = 6;
            }
            used += need;
            block.push(item);
        }
        flush(inner, &mut block)?;
        s4_obs::span::charge(
            s4_obs::Layer::Journal,
            self.clock.now().as_micros() - journal_t0,
        );
        Ok(())
    }

    /// Drops one reference to the journal block at `addr`, releasing the
    /// block when no object's sector list points into it anymore.
    /// Returns 1 if the block itself was released.
    fn release_sector_ref(&self, inner: &mut Inner, addr: BlockAddr) -> u64 {
        match inner.jblock_refs.get_mut(&addr.0) {
            Some(n) if *n > 1 => {
                *n -= 1;
                0
            }
            _ => {
                inner.jblock_refs.remove(&addr.0);
                inner.live.remove(&addr.0);
                self.log.release_blocks([addr]);
                1
            }
        }
    }

    /// Sync: pack all pending journal entries, flush the log, and perform
    /// periodic anchoring / object-cache eviction.
    fn sync_locked(&self, inner: &mut Inner) -> Result<()> {
        let oids: Vec<u64> = inner
            .table
            .iter()
            .filter_map(|(&oid, slot)| match slot {
                Slot::Cached(e) if !e.pending.is_empty() => Some(oid),
                _ => None,
            })
            .collect();
        self.pack_objects(inner, &oids)?;
        self.log.flush()?;
        self.stats.syncs(1);
        inner.syncs_since_anchor += 1;
        if inner.syncs_since_anchor >= self.config.anchor_interval_syncs {
            self.anchor_locked(inner)?;
        }
        self.evict_excess(inner)?;
        Ok(())
    }

    /// Evicts least-recently-used objects beyond the object-cache limit,
    /// checkpointing them first (§4.2.2: "an object's metadata is
    /// checkpointed to a log segment before being evicted from the
    /// cache").
    fn evict_excess(&self, inner: &mut Inner) -> Result<()> {
        let limit = self.config.object_cache_entries.max(1);
        loop {
            let cached: Vec<(u64, u64)> = inner
                .table
                .iter()
                .filter_map(|(&oid, slot)| match slot {
                    Slot::Cached(e) => Some((e.last_used, oid)),
                    _ => None,
                })
                .collect();
            if cached.len() <= limit {
                return Ok(());
            }
            let (_, victim) = cached.iter().copied().min().expect("non-empty");
            self.pack_objects(inner, &[victim])?;
            let mut entry = self.take_cached(inner, ObjectId(victim))?;
            if entry.dirty || entry.checkpoint_root.is_none() {
                self.write_checkpoint(inner, &mut entry)?;
            }
            let info = EvictInfo {
                checkpoint_root: entry.checkpoint_root,
                checkpoint_slot: entry.checkpoint_slot,
                expiry_hint: entry.expiry_hint(),
                deleted: entry.meta.deleted,
            };
            inner.table.insert(victim, Slot::Evicted(info));
        }
    }

    /// Writes a drive anchor: ensures every object is recoverable
    /// (first-time and relocation-dirtied objects get fresh checkpoints;
    /// everything else is covered by its checkpoint plus the anchored
    /// sector list), then persists the object map through the log's
    /// anchor mechanism.
    fn anchor_locked(&self, inner: &mut Inner) -> Result<()> {
        // Pack any pending journal entries first.
        let pending_oids: Vec<u64> = inner
            .table
            .iter()
            .filter_map(|(&oid, slot)| match slot {
                Slot::Cached(e) if !e.pending.is_empty() => Some(oid),
                _ => None,
            })
            .collect();
        self.pack_objects(inner, &pending_oids)?;

        // Checkpoint objects that a crash could not otherwise recover: a
        // checkpoint-less object is fine as long as its full journal
        // history (starting at its Create entry) is retained.
        let need_cp: Vec<u64> = inner
            .table
            .iter()
            .filter_map(|(&oid, slot)| match slot {
                Slot::Cached(e)
                    if e.needs_checkpoint
                        || (e.checkpoint_root.is_none()
                            && e.history_floor != HybridTimestamp::ZERO) =>
                {
                    Some(oid)
                }
                _ => None,
            })
            .collect();
        self.pack_checkpoints(inner, &need_cp)?;

        // Persist any buffered audit tail so records survive restarts.
        if let Some(tail) = inner.audit.take_pending_block() {
            let idx = inner.audit.blocks.len() as u64;
            let addr = self
                .log
                .append(BlockTag::new(BlockKind::Audit, AUDIT_OBJECT.0, idx), &tail)?;
            inner.audit.blocks.push(addr);
            inner.live.insert(addr.0);
            self.stats.audit_blocks(1);
        }

        // Likewise the buffered alert tail.
        if let Some(tail) = inner.alerts.take_pending_block() {
            let idx = inner.alerts.blocks.len() as u64;
            let addr = self
                .log
                .append(BlockTag::new(BlockKind::Audit, ALERT_OBJECT.0, idx), &tail)?;
            inner.alerts.blocks.push(addr);
            inner.live.insert(addr.0);
        }

        // And the buffered flight-recorder tail, so the persisted trace
        // stream stays an exact prefix of the request stream across an
        // orderly shutdown.
        if let Some(tail) = inner.traces.take_pending_block() {
            let idx = inner.traces.blocks.len() as u64;
            let addr = self
                .log
                .append(BlockTag::new(BlockKind::Audit, TRACE_OBJECT.0, idx), &tail)?;
            inner.traces.blocks.push(addr);
            inner.live.insert(addr.0);
        }

        let payload = encode_anchor_payload(inner);
        self.log.write_anchor(
            &payload,
            self.stamps.peek_seq(),
            self.clock.now().as_micros(),
        )?;
        inner.syncs_since_anchor = 0;
        self.stats.anchors(1);
        Ok(())
    }

    /// Expires the history of one object up to `cutoff`.
    fn expire_object(
        &self,
        inner: &mut Inner,
        oid: ObjectId,
        cutoff: HybridTimestamp,
    ) -> Result<u64> {
        // Skip loading evicted objects that cannot have expirable state.
        if let Some(Slot::Evicted(info)) = inner.table.get(&oid.0) {
            let deletable = info.deleted.is_some_and(|d| d <= cutoff);
            if info.expiry_hint > cutoff && !deletable {
                return Ok(0);
            }
        }
        let mut entry = self.take_cached(inner, oid)?;
        // Dropping journal prefix makes the object unrecoverable from the
        // journal alone: persist a checkpoint first (unless the whole
        // object is about to disappear).
        let fully_expiring = entry.meta.deleted.is_some_and(|d| d <= cutoff)
            && entry.pending.is_empty()
            && entry.sectors.last().is_none_or(|s| s.newest <= cutoff);
        if !fully_expiring
            && entry.checkpoint_root.is_none()
            && entry.sectors.first().is_some_and(|s| s.newest <= cutoff)
        {
            self.write_checkpoint(inner, &mut entry)?;
        }
        let mut released = 0u64;
        while let Some(first) = entry.sectors.first().copied() {
            if first.newest > cutoff {
                break;
            }
            let (_oid, entries) = read_subsector(&self.log, first.addr, first.slot)?;
            for e in &entries {
                let olds: Vec<BlockAddr> = match e {
                    JournalEntry::Write { changes, .. } => changes.iter().map(|c| c.old).collect(),
                    JournalEntry::Truncate { freed, .. } => freed.iter().map(|c| c.old).collect(),
                    _ => Vec::new(),
                };
                for old in olds {
                    if old.is_none() {
                        continue;
                    }
                    released += self.release_history_block(inner, &mut entry, old)?;
                }
            }
            released += self.release_sector_ref(inner, first.addr);
            entry.history_floor = first.newest;
            entry.sectors.remove(0);
            entry.dirty = true;
        }
        // A deleted object whose entire history has aged out disappears.
        let fully_expired = entry.meta.deleted.is_some_and(|d| d <= cutoff)
            && entry.sectors.is_empty()
            && entry.pending.is_empty()
            && entry.landmarks.is_empty();
        if fully_expired {
            let addrs: Vec<BlockAddr> = entry.meta.blocks.values().copied().collect();
            for a in addrs {
                released += self.release_history_block(inner, &mut entry, a)?;
            }
            self.release_checkpoint(inner, &mut entry);
            released += 1;
            // Entry intentionally not re-inserted: the object is gone.
        } else {
            self.put_back(inner, entry);
        }
        Ok(released)
    }

    /// Rewrites one object's history with versions in `[from, to]`
    /// removed (the chain surgery behind `Flush`/`FlushO`).
    fn flush_object_range(
        &self,
        inner: &mut Inner,
        oid: ObjectId,
        from: SimTime,
        to: SimTime,
    ) -> Result<()> {
        let lo = HybridTimestamp::new(from, 0);
        let hi = HybridTimestamp::upper_bound_at(to);
        let mut entry = self.take_cached(inner, oid)?;

        // Collect the object's full retained history, oldest first.
        let mut all: Vec<JournalEntry> = Vec::new();
        for s in &entry.sectors {
            match read_subsector(&self.log, s.addr, s.slot) {
                Ok((_o, es)) => all.extend(es),
                Err(e) => {
                    self.put_back(inner, entry);
                    return Err(e);
                }
            }
        }
        all.extend(entry.pending.iter().cloned());

        // Pass 1 (newest -> oldest): an in-range entry is droppable only
        // if every item it touches is superseded by a kept, later entry;
        // Create/Delete are never dropped.
        #[derive(PartialEq, Eq, Hash, Clone, Copy)]
        enum Item {
            Lbn(u64),
            Attrs,
            Acl,
            Size,
        }
        fn items_of(e: &JournalEntry) -> Vec<Item> {
            match e {
                JournalEntry::Write { changes, .. } => {
                    let mut v: Vec<Item> = changes.iter().map(|c| Item::Lbn(c.lbn)).collect();
                    v.push(Item::Size);
                    v
                }
                JournalEntry::Truncate { freed, .. } => {
                    let mut v: Vec<Item> = freed.iter().map(|c| Item::Lbn(c.lbn)).collect();
                    v.push(Item::Size);
                    v
                }
                JournalEntry::SetAttr { .. } => vec![Item::Attrs],
                JournalEntry::SetAcl { .. } => vec![Item::Acl],
                _ => Vec::new(),
            }
        }
        let mut superseded: HashSet<Item> = HashSet::new();
        let mut drop_flags = vec![false; all.len()];
        for (i, e) in all.iter().enumerate().rev() {
            let items = items_of(e);
            let in_range = e.stamp() >= lo && e.stamp() <= hi;
            let droppable = in_range
                && !items.is_empty()
                && items.iter().all(|it| superseded.contains(it))
                && !matches!(e, JournalEntry::Create { .. } | JournalEntry::Delete { .. });
            if droppable {
                drop_flags[i] = true;
            } else {
                for it in items {
                    superseded.insert(it);
                }
            }
        }
        if !drop_flags.iter().any(|&d| d) {
            self.put_back(inner, entry);
            return Ok(());
        }

        // Pass 2 (oldest -> newest): rewrite kept entries' old fields to
        // skip dropped versions, and release the dropped blocks.
        let mut last_val: HashMap<u64, BlockAddr> = HashMap::new();
        let mut last_attrs: Option<Vec<u8>> = None;
        let mut last_acl: Option<Vec<u8>> = None;
        let mut last_size: Option<u64> = None;
        let mut kept: Vec<JournalEntry> = Vec::with_capacity(all.len());
        let mut to_release: Vec<BlockAddr> = Vec::new();
        for (i, mut e) in all.into_iter().enumerate() {
            let dropped = drop_flags[i];
            match &mut e {
                JournalEntry::Write {
                    old_size,
                    new_size,
                    changes,
                    ..
                }
                | JournalEntry::Truncate {
                    old_size,
                    new_size,
                    freed: changes,
                    ..
                } => {
                    for c in changes.iter_mut() {
                        let baseline = *last_val.entry(c.lbn).or_insert(c.old);
                        if dropped {
                            if !c.new.is_none() {
                                to_release.push(c.new);
                            }
                        } else {
                            c.old = baseline;
                            last_val.insert(c.lbn, c.new);
                        }
                    }
                    let size_baseline = *last_size.get_or_insert(*old_size);
                    if !dropped {
                        *old_size = size_baseline;
                        last_size = Some(*new_size);
                    }
                }
                JournalEntry::SetAttr { old, new, .. } => {
                    let baseline = last_attrs.get_or_insert_with(|| old.clone()).clone();
                    if !dropped {
                        *old = baseline;
                        last_attrs = Some(new.clone());
                    }
                }
                JournalEntry::SetAcl { old, new, .. } => {
                    let baseline = last_acl.get_or_insert_with(|| old.clone()).clone();
                    if !dropped {
                        *old = baseline;
                        last_acl = Some(new.clone());
                    }
                }
                _ => {}
            }
            if !dropped {
                kept.push(e);
            }
        }

        // Release dropped data blocks.
        for a in to_release {
            self.release_history_block(inner, &mut entry, a)?;
        }
        // Release the old sector chain and repack the rewritten history.
        for s in entry.sectors.drain(..) {
            self.release_sector_ref(inner, s.addr);
        }
        entry.meta.journal_head = BlockAddr::NONE;
        entry.pending = kept;
        entry.dirty = true;
        entry.needs_checkpoint = true;
        let oid_raw = entry.meta.id;
        self.put_back(inner, entry);
        self.pack_objects(inner, &[oid_raw])?;
        Ok(())
    }

    fn read_audit_raw(&self, ctx: &RequestContext, offset: u64, len: u64) -> Result<Vec<u8>> {
        if !self.is_admin(ctx) {
            return Err(S4Error::AccessDenied);
        }
        let inner = self.inner.lock();
        let mut stream = Vec::new();
        for &addr in &inner.audit.blocks {
            let block = self.log.read_block(addr)?;
            stream.extend_from_slice(&block);
        }
        stream.extend_from_slice(&inner.audit.pending);
        let off = (offset as usize).min(stream.len());
        let end = (off + len as usize).min(stream.len());
        Ok(stream[off..end].to_vec())
    }

    fn read_partitions(
        &self,
        inner: &mut Inner,
        time: Option<SimTime>,
    ) -> Result<Vec<(String, u64)>> {
        let entry = self.take_cached(inner, PARTITION_OBJECT)?;
        let r = (|| {
            let meta = match time {
                None => entry.meta.clone(),
                Some(t) => self.version_at(&entry, t)?,
            };
            let data = self.read_extent(&entry, &meta, 0, meta.size)?;
            decode_partition_blob(&data)
        })();
        self.put_back(inner, entry);
        r
    }

    fn write_partitions(&self, inner: &mut Inner, parts: &[(String, u64)]) -> Result<()> {
        let blob = encode_partition_blob(parts);
        let mut entry = self.take_cached(inner, PARTITION_OBJECT)?;
        let r = (|| {
            let old_size = entry.meta.size;
            if !blob.is_empty() {
                self.write_extent(inner, &mut entry, 0, &blob)?;
            }
            if old_size > blob.len() as u64 {
                self.truncate_inner(inner, &mut entry, blob.len() as u64)?;
            }
            Ok(())
        })();
        self.put_back(&mut *inner, entry);
        r
    }

    // ------------------------------------------------------------------
    // Cross-shard transactions (participant side of two-phase commit).
    //
    // The drive persists its 2PC state in [`TXN_OBJECT`], a journaled
    // table object, so the ordinary sync discipline gives each record a
    // crisp durability point. Abort is *forward compensation*: rather
    // than physically undoing journal entries (which would corrupt the
    // append-only history pool), the drive appends NEW entries that
    // restore every touched object to its state as of the transaction's
    // `t0` — self-securing even across its own rollbacks.
    // ------------------------------------------------------------------

    /// Opens participation in transaction `txid`: flushes a `Prepared`
    /// record and returns `t0`, the instant compensation would restore
    /// to. The clock is nudged one microsecond past `t0` so every effect
    /// of the transaction is stamped *strictly* after it.
    pub fn txn_begin(&self, txid: u64) -> Result<SimTime> {
        let t0 = self.clock.now();
        self.clock.advance(SimDuration::from_micros(1));
        self.txn_begin_at(txid, t0)?;
        Ok(t0)
    }

    /// [`txn_begin`](Self::txn_begin) with a caller-chosen `t0`. Mirror
    /// workers use this to record the *same* restore point on every
    /// member — the shared clock must already be strictly past `t0`, or
    /// the transaction's effects would not sort after it.
    pub fn txn_begin_at(&self, txid: u64, t0: SimTime) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.txn_pending.contains_key(&txid) {
            return Err(S4Error::BadRequest("duplicate transaction id"));
        }
        self.txn_append_record(
            &mut inner,
            &TxnRecord::Prepared {
                txid,
                t0_us: t0.as_micros(),
            },
        )?;
        inner.txn_pending.insert(
            txid,
            TxnPending {
                t0_us: t0.as_micros(),
                touched: None,
            },
        );
        Ok(())
    }

    /// Casts this drive's yes-vote for `txid`: the sub-batch executed,
    /// touching exactly `oids` and adding partition `names`. The
    /// `Touched` record is flushed (making the effects and their scope
    /// durable) before this returns, so a vote that reached the
    /// coordinator implies the effects survive any crash.
    pub fn txn_vote(&self, txid: u64, oids: Vec<u64>, names: Vec<String>) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.txn_pending.contains_key(&txid) {
            return Err(S4Error::BadRequest("vote for unknown transaction"));
        }
        self.txn_append_record(
            &mut inner,
            &TxnRecord::Touched {
                txid,
                oids: oids.clone(),
                names: names.clone(),
            },
        )?;
        for &o in &oids {
            inner.txn_locks.insert(o, txid);
        }
        if let Some(p) = inner.txn_pending.get_mut(&txid) {
            p.touched = Some((oids, names));
        }
        Ok(())
    }

    /// Applies the coordinator's decision for `txid`. Commit is a pure
    /// bookkeeping step (the effects are already durable); abort runs
    /// compensation first, so a crash mid-abort leaves the transaction
    /// in doubt and recovery simply aborts it again (compensation is
    /// convergent). Unknown `txid` is an idempotent no-op — retried
    /// decisions and already-resolved mounts land here.
    pub fn txn_decide(&self, txid: u64, commit: bool) -> Result<()> {
        let mut inner = self.inner.lock();
        let Some(p) = inner.txn_pending.get(&txid) else {
            return Ok(());
        };
        if !commit {
            let t0_us = p.t0_us;
            let scope = p.touched.clone();
            self.txn_compensate(&mut inner, txid, t0_us, scope.as_ref())?;
        }
        self.txn_append_record(&mut inner, &TxnRecord::Resolved { txid, committed: commit })?;
        inner.txn_pending.remove(&txid);
        inner.txn_locks.retain(|_, t| *t != txid);
        if inner.txn_pending.is_empty() {
            self.txn_truncate_log(&mut inner)?;
        }
        Ok(())
    }

    /// The transactions this drive has prepared but not resolved, as
    /// `(txid, t0_us)` in prepare order. The array consults this at
    /// mount to drive decision-note recovery.
    pub fn txn_in_doubt(&self) -> Vec<(u64, u64)> {
        self.inner
            .lock()
            .txn_pending
            .iter()
            .map(|(&txid, p)| (txid, p.t0_us))
            .collect()
    }

    /// The in-flight transaction holding `oid`, if any. The dispatcher
    /// uses this to reject outside mutations of pinned objects.
    pub fn txn_lock_holder(&self, oid: ObjectId) -> Option<u64> {
        self.inner.lock().txn_locks.get(&oid.0).copied()
    }

    /// Appends `rec` to the transaction log and syncs, creating the log
    /// object lazily on first use (no dynamic-oid consumption — the id
    /// is a reserved sentinel).
    fn txn_append_record(&self, inner: &mut Inner, rec: &TxnRecord) -> Result<()> {
        if !inner.table.contains_key(&TXN_OBJECT.0) {
            let stamp = self.stamps.next();
            let mut entry = ObjectEntry::new(ObjectMeta::new(TXN_OBJECT.0, stamp));
            entry.pending.push(JournalEntry::Create { stamp });
            entry.last_used = inner.bump_lru();
            inner.table.insert(TXN_OBJECT.0, Slot::Cached(Box::new(entry)));
        }
        let mut bytes = Vec::new();
        rec.encode_into(&mut bytes);
        let mut entry = self.take_cached(inner, TXN_OBJECT)?;
        let off = entry.meta.size;
        let r = self.write_extent(inner, &mut entry, off, &bytes);
        self.put_back(inner, entry);
        r?;
        self.sync_locked(inner)
    }

    /// Truncates the transaction log once nothing is pending. Lazy: the
    /// truncate rides the next sync; losing it merely leaves resolved
    /// records that the in-doubt fold ignores.
    fn txn_truncate_log(&self, inner: &mut Inner) -> Result<()> {
        if !inner.table.contains_key(&TXN_OBJECT.0) {
            return Ok(());
        }
        let mut entry = self.take_cached(inner, TXN_OBJECT)?;
        let r = if entry.meta.size > 0 {
            self.truncate_inner(inner, &mut entry, 0)
        } else {
            Ok(())
        };
        self.put_back(inner, entry);
        r
    }

    /// Rebuilds `txn_pending`/`txn_locks` from the recovered transaction
    /// log — called at mount and after a resync image restore.
    pub(crate) fn rebuild_txn_state(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.txn_pending.clear();
        inner.txn_locks.clear();
        if !inner.table.contains_key(&TXN_OBJECT.0) {
            return Ok(());
        }
        let entry = self.take_cached(&mut inner, TXN_OBJECT)?;
        let r = self.read_extent(&entry, &entry.meta, 0, entry.meta.size);
        self.put_back(&mut inner, entry);
        let records = txnlog::scan(&r?)
            .map_err(|_| S4Error::BadRequest("corrupt transaction log"))?;
        for t in txnlog::in_doubt(&records) {
            if let Some((oids, _)) = &t.touched {
                for &o in oids {
                    inner.txn_locks.insert(o, t.txid);
                }
            }
            inner.txn_pending.insert(
                t.txid,
                TxnPending {
                    t0_us: t.t0_us,
                    touched: t.touched,
                },
            );
        }
        Ok(())
    }

    /// Restores this drive's state to `t0` for an aborting transaction.
    /// With a recorded scope, only the listed objects and names are
    /// compensated. Without one (crash mid-prepare), every object with a
    /// stamp after `t0` is restored — sound because the worker holds the
    /// drive exclusively while preparing, so only the dead transaction
    /// can have written in that window; objects pinned by *other*
    /// pending transactions are skipped (their effects predate `t0`
    /// anyway — prepares are serial — so there is nothing to restore).
    fn txn_compensate(
        &self,
        inner: &mut Inner,
        txid: u64,
        t0_us: u64,
        scope: Option<&(Vec<u64>, Vec<String>)>,
    ) -> Result<()> {
        let t0 = SimTime::from_micros(t0_us);
        match scope {
            Some((oids, names)) => {
                for &oid in oids {
                    self.txn_restore_object(inner, ObjectId(oid), t0)?;
                }
                if !names.is_empty() {
                    let mut parts = self.read_partitions(inner, None)?;
                    let before = parts.len();
                    parts.retain(|(n, _)| !names.contains(n));
                    if parts.len() != before {
                        self.write_partitions(inner, &parts)?;
                    }
                }
            }
            None => {
                let oids: Vec<u64> = inner.table.keys().copied().collect();
                for oid in oids {
                    if oid == TXN_OBJECT.0 {
                        continue;
                    }
                    if inner.txn_locks.get(&oid).is_some_and(|t| *t != txid) {
                        continue;
                    }
                    self.txn_restore_object(inner, ObjectId(oid), t0)?;
                }
            }
        }
        Ok(())
    }

    /// Forward-compensates one object back to its state at `t0`:
    /// created-after-`t0` objects are deleted; deleted-after-`t0`
    /// objects are revived to their recorded pre-delete stamp; content,
    /// attributes, and ACL diffs become fresh journal entries. Running
    /// it twice converges — the second pass finds nothing stamped after
    /// `t0` left to restore.
    fn txn_restore_object(&self, inner: &mut Inner, oid: ObjectId, t0: SimTime) -> Result<()> {
        if !inner.table.contains_key(&oid.0) {
            // The create never reached disk; nothing to compensate.
            return Ok(());
        }
        let bound = HybridTimestamp::upper_bound_at(t0);
        let mut entry = self.take_cached(inner, oid)?;
        let r = (|| {
            let touched_after = entry.meta.modified > bound
                || entry.meta.created > bound
                || entry.meta.deleted.is_some_and(|d| d > bound);
            if !touched_after {
                return Ok(());
            }
            let old = match self.version_at(&entry, t0) {
                Ok(m) => Some(m),
                Err(S4Error::NoSuchObject) => None,
                Err(e) => return Err(e),
            };
            match old {
                None => {
                    // Created inside the transaction: make it dead again
                    // (its id is never reused, so history stays sound).
                    if entry.meta.is_live() {
                        let e = JournalEntry::Delete {
                            stamp: self.stamps.next(),
                        };
                        redo(&mut entry.meta, &e);
                        entry.pending.push(e);
                        entry.dirty = true;
                        self.stats.versions_created(1);
                    }
                }
                Some(old) if old.is_live() => {
                    if !entry.meta.is_live() {
                        let e = JournalEntry::Revive {
                            stamp: self.stamps.next(),
                            was_deleted: entry.meta.deleted.expect("dead object has a stamp"),
                        };
                        redo(&mut entry.meta, &e);
                        entry.pending.push(e);
                        entry.dirty = true;
                        self.stats.versions_created(1);
                    }
                    let old_content = self.read_extent(&entry, &old, 0, old.size)?;
                    let cur_content =
                        self.read_extent(&entry, &entry.meta, 0, entry.meta.size)?;
                    if cur_content != old_content || entry.meta.size != old.size {
                        self.write_extent(inner, &mut entry, 0, &old_content)?;
                        if entry.meta.size != old.size {
                            self.truncate_inner(inner, &mut entry, old.size)?;
                        }
                    }
                    if entry.meta.attrs != old.attrs {
                        let e = JournalEntry::SetAttr {
                            stamp: self.stamps.next(),
                            old: entry.meta.attrs.clone(),
                            new: old.attrs.clone(),
                        };
                        redo(&mut entry.meta, &e);
                        entry.pending.push(e);
                        entry.dirty = true;
                        self.stats.versions_created(1);
                    }
                    if entry.meta.acl != old.acl {
                        let e = JournalEntry::SetAcl {
                            stamp: self.stamps.next(),
                            old: entry.meta.acl.clone(),
                            new: old.acl.clone(),
                        };
                        redo(&mut entry.meta, &e);
                        entry.pending.push(e);
                        entry.dirty = true;
                        self.stats.versions_created(1);
                    }
                }
                Some(_) => {
                    // Dead at t0: re-delete if the transaction revived or
                    // recreated it (content of a dead object is
                    // unreachable through live reads, so liveness is the
                    // whole restore).
                    if entry.meta.is_live() {
                        let e = JournalEntry::Delete {
                            stamp: self.stamps.next(),
                        };
                        redo(&mut entry.meta, &e);
                        entry.pending.push(e);
                        entry.dirty = true;
                        self.stats.versions_created(1);
                    }
                }
            }
            Ok(())
        })();
        self.put_back(inner, entry);
        r
    }
}

impl Inner {
    fn bump_lru(&mut self) -> u64 {
        self.lru += 1;
        self.lru
    }
}

// ----------------------------------------------------------------------
// Journal-block packing (several objects' sectors per 4 KiB block).
// ----------------------------------------------------------------------

fn encode_container<'a, I: Iterator<Item = &'a [u8]>>(magic: u32, subs: I) -> Vec<u8> {
    let mut out = Vec::with_capacity(BLOCK_SIZE);
    out.extend_from_slice(&magic.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // count patched below
    let mut count = 0u16;
    for sub in subs {
        out.extend_from_slice(&(sub.len() as u32).to_le_bytes());
        out.extend_from_slice(sub);
        count += 1;
    }
    out[4..6].copy_from_slice(&count.to_le_bytes());
    debug_assert!(out.len() <= BLOCK_SIZE, "journal block overflow");
    out
}

fn split_container(magic: u32, buf: &[u8]) -> Result<Vec<Vec<u8>>> {
    if buf.len() < 6 || buf[0..4] != magic.to_le_bytes() {
        return Err(S4Error::BadRequest("container block magic"));
    }
    let count = u16::from_le_bytes(buf[4..6].try_into().unwrap()) as usize;
    let mut pos = 6;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if pos + 4 > buf.len() {
            return Err(S4Error::BadRequest("journal block truncated"));
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + len > buf.len() {
            return Err(S4Error::BadRequest("journal sub-sector truncated"));
        }
        out.push(buf[pos..pos + len].to_vec());
        pos += len;
    }
    Ok(out)
}

/// Reads one object's sector out of a shared journal block.
fn read_subsector<D: BlockDev>(
    log: &Log<D>,
    addr: BlockAddr,
    slot: u32,
) -> Result<(u64, Vec<JournalEntry>)> {
    let block = log.read_block(addr)?;
    let subs = split_container(JBLOCK_MAGIC, &block)?;
    let sub = subs
        .get(slot as usize)
        .ok_or(S4Error::BadRequest("journal slot out of range"))?;
    let (oid, _prev, entries) = decode_sector(sub)?;
    Ok((oid, entries))
}

// ----------------------------------------------------------------------
// Cleaner callbacks.
// ----------------------------------------------------------------------

struct DriveCallbacks<'a, D: BlockDev> {
    drive: &'a S4Drive<D>,
}

impl<D: BlockDev> RelocationCallbacks for DriveCallbacks<'_, D> {
    fn is_live(&self, _tag: &BlockTag, addr: BlockAddr) -> bool {
        self.drive.inner.lock().live.contains(&addr.0)
    }

    fn relocate(&self, tag: &BlockTag, addr: BlockAddr, data: &[u8]) -> s4_lfs::Result<()> {
        let drive = self.drive;
        let mut inner = drive.inner.lock();
        match tag.kind {
            BlockKind::Data => {
                let new = drive.log.append(*tag, data)?;
                inner.live.remove(&addr.0);
                inner.live.insert(new.0);
                if tag.object == AUDIT_OBJECT.0 {
                    if let Some(slot) = inner.audit.blocks.iter_mut().find(|a| **a == addr) {
                        *slot = new;
                    }
                    return Ok(());
                }
                if drive
                    .ensure_cached(&mut inner, ObjectId(tag.object))
                    .is_err()
                {
                    return Ok(()); // object vanished; block was stale
                }
                if let Some(Slot::Cached(entry)) = inner.table.get_mut(&tag.object) {
                    // Current map pointer, if it is this address.
                    if entry.meta.blocks.get(&tag.aux) == Some(&addr) {
                        entry.meta.blocks.insert(tag.aux, new);
                    }
                    // History references resolve through forwarding.
                    entry.forwards.insert(addr.0, new.0);
                    entry.dirty = true;
                    entry.needs_checkpoint = true;
                }
                Ok(())
            }
            BlockKind::Audit => {
                let new = drive.log.append(*tag, data)?;
                inner.live.remove(&addr.0);
                inner.live.insert(new.0);
                let list = if tag.object == ALERT_OBJECT.0 {
                    &mut inner.alerts.blocks
                } else if tag.object == TRACE_OBJECT.0 {
                    &mut inner.traces.blocks
                } else {
                    &mut inner.audit.blocks
                };
                if let Some(slot) = list.iter_mut().find(|a| **a == addr) {
                    *slot = new;
                }
                Ok(())
            }
            BlockKind::JournalSector => {
                let new = drive.log.append(*tag, data)?;
                inner.live.remove(&addr.0);
                inner.live.insert(new.0);
                if let Some(refs) = inner.jblock_refs.remove(&addr.0) {
                    inner.jblock_refs.insert(new.0, refs);
                }
                // Every object with a sector in this block must re-point.
                let oids: Vec<u64> = match split_container(JBLOCK_MAGIC, data) {
                    Ok(subs) => subs
                        .iter()
                        .filter_map(|sub| decode_sector(sub).ok().map(|(oid, _, _)| oid))
                        .collect(),
                    Err(_) => Vec::new(),
                };
                for oid in oids {
                    if drive.ensure_cached(&mut inner, ObjectId(oid)).is_err() {
                        continue;
                    }
                    if let Some(Slot::Cached(entry)) = inner.table.get_mut(&oid) {
                        for info in entry.sectors.iter_mut().filter(|s| s.addr == addr) {
                            info.addr = new;
                        }
                        if entry.meta.journal_head == addr {
                            entry.meta.journal_head = new;
                        }
                        entry.dirty = true;
                    }
                }
                Ok(())
            }
            BlockKind::ObjectCheckpoint => {
                // Rewrite fresh checkpoints for every object whose
                // checkpoint lives in this block, instead of copying the
                // stale bytes.
                inner.live.remove(&addr.0);
                inner.cpblock_refs.remove(&addr.0);
                let oids: Vec<u64> = match split_container(CPBLOCK_MAGIC, data) {
                    Ok(subs) => subs
                        .iter()
                        .filter_map(|b| ObjectEntry::decode(b).ok().map(|e| e.meta.id))
                        .collect(),
                    // A dedicated chain block: tag.object owns it.
                    Err(_) => vec![tag.object],
                };
                let mut repack: Vec<u64> = Vec::new();
                for oid in oids {
                    if drive.ensure_cached(&mut inner, ObjectId(oid)).is_err() {
                        continue;
                    }
                    let stale_chain: Vec<BlockAddr> = match inner.table.get_mut(&oid) {
                        Some(Slot::Cached(entry)) => {
                            if entry.checkpoint_root != addr {
                                continue; // superseded since
                            }
                            let chain = entry.checkpoint_blocks.drain(..).collect();
                            entry.checkpoint_root = BlockAddr::NONE;
                            entry.checkpoint_slot = u32::MAX;
                            repack.push(oid);
                            chain
                        }
                        _ => continue,
                    };
                    // Drop the stale chain without touching the block
                    // being reclaimed.
                    for cp in stale_chain {
                        inner.live.remove(&cp.0);
                        if cp != addr {
                            drive.log.release_blocks([cp]);
                        }
                    }
                }
                drive
                    .pack_checkpoints(&mut inner, &repack)
                    .map_err(|_| s4_lfs::LfsError::Corrupt("checkpoint rewrite"))?;
                Ok(())
            }
            BlockKind::DeltaData => {
                let new = drive.log.append(*tag, data)?;
                inner.live.remove(&addr.0);
                inner.live.insert(new.0);
                if let Some(refs) = inner.dblock_refs.remove(&addr.0) {
                    inner.dblock_refs.insert(new.0, refs);
                }
                // Re-point every (object, key) delta reference into the
                // relocated block.
                let pairs: Vec<(u64, u64)> = match split_container(DBLOCK_MAGIC, data) {
                    Ok(subs) => subs
                        .iter()
                        .filter(|sub| sub.len() >= 16)
                        .map(|sub| {
                            (
                                u64::from_le_bytes(sub[0..8].try_into().unwrap()),
                                u64::from_le_bytes(sub[8..16].try_into().unwrap()),
                            )
                        })
                        .collect(),
                    Err(_) => Vec::new(),
                };
                for (oid, key) in pairs {
                    if drive.ensure_cached(&mut inner, ObjectId(oid)).is_err() {
                        continue;
                    }
                    if let Some(Slot::Cached(entry)) = inner.table.get_mut(&oid) {
                        if let Some(dref) = entry.deltas.get_mut(&key) {
                            if dref.block == addr {
                                dref.block = new;
                                entry.needs_checkpoint = true;
                                entry.dirty = true;
                            }
                        }
                    }
                }
                Ok(())
            }
            BlockKind::SystemState => Ok(()),
        }
    }
}

// ----------------------------------------------------------------------
// Anchor payload codec (version 2: object map with per-object sector
// lists; the reachable-block set is rebuilt at mount, not persisted).
// ----------------------------------------------------------------------

struct AnchorRecord {
    oid: u64,
    root: BlockAddr,
    slot: u32,
    floor: HybridTimestamp,
    /// `None` means "use the sector list inside the checkpoint blob"
    /// (always the case for evicted objects, whose checkpoint is exact).
    sectors: Option<Vec<SectorInfo>>,
}

fn push_stamp(out: &mut Vec<u8>, s: HybridTimestamp) {
    out.extend_from_slice(&s.time.as_micros().to_le_bytes());
    out.extend_from_slice(&s.seq.to_le_bytes());
}

fn read_stamp(buf: &[u8], pos: &mut usize) -> Result<HybridTimestamp> {
    if *pos + 16 > buf.len() {
        return Err(S4Error::BadRequest("anchor stamp truncated"));
    }
    let t = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
    let q = u64::from_le_bytes(buf[*pos + 8..*pos + 16].try_into().unwrap());
    *pos += 16;
    Ok(HybridTimestamp::new(SimTime::from_micros(t), q))
}

/// One live object's current version as exported by
/// [`S4Drive::resync_image`]: everything needed to recreate the
/// client-visible object on a replacement mirror member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResyncObject {
    /// Object id (preserved verbatim — ids route by residue class).
    pub oid: u64,
    /// Creation time (the stamp's time component; sequence is local).
    pub created: SimTime,
    /// Last-modification time.
    pub modified: SimTime,
    /// Full current contents (`size` bytes; sparse holes as zeros).
    pub content: Vec<u8>,
    /// Opaque attribute blob.
    pub attrs: Vec<u8>,
    /// Encoded ACL table.
    pub acl: Vec<u8>,
}

/// One reserved append-only stream (audit, alert, or trace) as exported
/// by [`S4Drive::resync_image`]: flushed block payloads plus the
/// buffered tail, with the counters recovery re-derives seq from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResyncStream {
    /// Flushed block payloads, oldest first.
    pub blocks: Vec<Vec<u8>>,
    /// The in-memory pending tail.
    pub pending: Vec<u8>,
    /// Total records ever appended (survives retention truncation).
    pub total: u64,
    /// Blocks dropped from the front by retention flushes.
    pub flushed_blocks: u64,
}

/// A point-in-time export of a drive's logical state, consumed by
/// [`S4Drive::format_from_image`] to rebuild a failed mirror member
/// from its surviving peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResyncImage {
    /// The id allocator floor, so the replacement never re-issues an id.
    pub next_oid: u64,
    /// The detection window in force on the source drive.
    pub window: SimDuration,
    /// Every live object's current version, ascending by id.
    pub objects: Vec<ResyncObject>,
    /// The audit log stream.
    pub audit: ResyncStream,
    /// The alert object stream.
    pub alerts: ResyncStream,
    /// The flight-recorder trace stream.
    pub traces: ResyncStream,
}

/// Re-appends exported stream block payloads onto a freshly formatted
/// log, registering each new address as live. Split-borrow helper for
/// [`S4Drive::format_from_image`].
fn restore_stream<D: BlockDev>(
    log: &Log<D>,
    live: &mut HashSet<u64>,
    blocks: &mut Vec<BlockAddr>,
    oid: u64,
    payloads: &[Vec<u8>],
) -> Result<()> {
    for payload in payloads {
        let idx = blocks.len() as u64;
        let addr = log.append(BlockTag::new(BlockKind::Audit, oid, idx), payload)?;
        blocks.push(addr);
        live.insert(addr.0);
    }
    Ok(())
}

/// Encodes a drive-raised self-alert in the `s4-detect` `Alert` wire
/// format (severity, time, user, client, object, then length-prefixed
/// rule and message strings), so the standard alert pollers decode it
/// like any detector-raised alert. The drive cannot depend on
/// `s4-detect` (the dependency points the other way), so the format is
/// reproduced here; `s4-detect` has a test pinning the two together.
pub(crate) fn encode_system_alert(rule: &[u8], time_us: u64, message: &[u8]) -> Vec<u8> {
    const SEVERITY_WARNING: u8 = 2;
    let mut out = Vec::with_capacity(29 + rule.len() + message.len());
    out.push(SEVERITY_WARNING);
    out.extend_from_slice(&time_us.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // user: the drive itself
    out.extend_from_slice(&0u32.to_le_bytes()); // client: the drive itself
    out.extend_from_slice(&ALERT_OBJECT.0.to_le_bytes());
    out.extend_from_slice(&(rule.len() as u16).to_le_bytes());
    out.extend_from_slice(rule);
    out.extend_from_slice(&(message.len() as u16).to_le_bytes());
    out.extend_from_slice(message);
    out
}

/// The alert-object growth self-alert (kept as its own function so the
/// `s4-detect` wire-format pin test has a stable target).
fn encode_growth_alert(time_us: u64, message: &[u8]) -> Vec<u8> {
    encode_system_alert(b"alert-object-growth", time_us, message)
}

/// Timestamp (µs) of one alert blob — every alert the drive or the
/// `s4-detect` crate writes carries its time at bytes `[1..9]` (after
/// the severity byte; see [`encode_growth_alert`]). Undated blobs read
/// as time 0 (oldest), so retention treats them as expired.
fn alert_blob_time(blob: &[u8]) -> u64 {
    if blob.len() >= 9 {
        u64::from_le_bytes(blob[1..9].try_into().unwrap())
    } else {
        0
    }
}

/// Timestamp (µs) of one persisted flight-recorder blob.
fn trace_blob_time(blob: &[u8]) -> u64 {
    TraceRecord::decode(blob).map(|r| r.time_us).unwrap_or(0)
}

fn encode_anchor_payload(inner: &Inner) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&ANCHOR_MAGIC.to_le_bytes());
    out.extend_from_slice(&inner.next_oid.to_le_bytes());
    out.extend_from_slice(&inner.window.as_micros().to_le_bytes());
    out.extend_from_slice(&inner.audit.encode());
    out.extend_from_slice(&(inner.table.len() as u32).to_le_bytes());
    for (&oid, slot) in &inner.table {
        out.extend_from_slice(&oid.to_le_bytes());
        match slot {
            Slot::Cached(e) => {
                debug_assert!(
                    e.pending.is_empty()
                        && !e.needs_checkpoint
                        && (!e.checkpoint_root.is_none()
                            || e.history_floor == HybridTimestamp::ZERO),
                    "anchor with unrecoverable object {oid}"
                );
                out.extend_from_slice(&e.checkpoint_root.0.to_le_bytes());
                out.extend_from_slice(&e.checkpoint_slot.to_le_bytes());
                push_stamp(&mut out, e.history_floor);
                out.push(1); // explicit sector list
                out.extend_from_slice(&(e.sectors.len() as u32).to_le_bytes());
                for s in &e.sectors {
                    out.extend_from_slice(&s.addr.0.to_le_bytes());
                    out.extend_from_slice(&s.slot.to_le_bytes());
                    push_stamp(&mut out, s.oldest);
                    push_stamp(&mut out, s.newest);
                }
            }
            Slot::Evicted(i) => {
                out.extend_from_slice(&i.checkpoint_root.0.to_le_bytes());
                out.extend_from_slice(&i.checkpoint_slot.to_le_bytes());
                push_stamp(&mut out, HybridTimestamp::ZERO); // floor from blob
                out.push(0); // sector list from blob
            }
        }
    }
    // Alert-object state trails the table so anchors written before the
    // alert object existed still decode; the flight-recorder state
    // trails the alerts for the same reason.
    out.extend_from_slice(&inner.alerts.encode());
    out.extend_from_slice(&inner.traces.encode());
    out
}

fn decode_anchor_payload(
    payload: &[u8],
    config: &DriveConfig,
) -> Result<(Inner, Vec<AnchorRecord>)> {
    let mut inner = Inner {
        table: HashMap::new(),
        next_oid: FIRST_DYNAMIC_OID,
        window: config.detection_window,
        audit: AuditState::default(),
        alerts: AlertState::default(),
        traces: AlertState::default(),
        alert_growth_warned: false,
        live: HashSet::new(),
        jblock_refs: HashMap::new(),
        cpblock_refs: HashMap::new(),
        dblock_refs: HashMap::new(),
        throttle: ThrottleState::new(config.throttle),
        syncs_since_anchor: 0,
        lru: 0,
        txn_pending: BTreeMap::new(),
        txn_locks: BTreeMap::new(),
    };
    if payload.is_empty() {
        return Ok((inner, Vec::new()));
    }
    let need = |p: usize, n: usize| {
        if p + n > payload.len() {
            Err(S4Error::BadRequest("anchor payload truncated"))
        } else {
            Ok(())
        }
    };
    need(0, 20)?;
    if payload[0..4] != ANCHOR_MAGIC.to_le_bytes() {
        return Err(S4Error::BadRequest("anchor payload magic"));
    }
    inner.next_oid = u64::from_le_bytes(payload[4..12].try_into().unwrap());
    inner.window =
        SimDuration::from_micros(u64::from_le_bytes(payload[12..20].try_into().unwrap()));
    let mut pos = 20;
    inner.audit = AuditState::decode_from(payload, &mut pos)?;
    need(pos, 4)?;
    let nobj = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 4;
    let mut records = Vec::with_capacity(nobj);
    for _ in 0..nobj {
        need(pos, 20)?;
        let oid = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap());
        let root = BlockAddr(u64::from_le_bytes(
            payload[pos + 8..pos + 16].try_into().unwrap(),
        ));
        let cp_slot = u32::from_le_bytes(payload[pos + 16..pos + 20].try_into().unwrap());
        pos += 20;
        let floor = read_stamp(payload, &mut pos)?;
        need(pos, 1)?;
        let explicit = payload[pos] == 1;
        pos += 1;
        let sectors = if explicit {
            need(pos, 4)?;
            let n = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                need(pos, 12)?;
                let addr = BlockAddr(u64::from_le_bytes(
                    payload[pos..pos + 8].try_into().unwrap(),
                ));
                let slot = u32::from_le_bytes(payload[pos + 8..pos + 12].try_into().unwrap());
                pos += 12;
                let oldest = read_stamp(payload, &mut pos)?;
                let newest = read_stamp(payload, &mut pos)?;
                v.push(SectorInfo {
                    addr,
                    slot,
                    oldest,
                    newest,
                });
            }
            Some(v)
        } else {
            None
        };
        records.push(AnchorRecord {
            oid,
            root,
            slot: cp_slot,
            floor,
            sectors,
        });
    }
    if pos < payload.len() {
        inner.alerts = AlertState::decode_from(payload, &mut pos)?;
    }
    if pos < payload.len() {
        inner.traces = AlertState::decode_from(payload, &mut pos)?;
    }
    Ok((inner, records))
}

/// Applies one recovered (post-anchor) journal sector to the object
/// table during mount.
fn apply_recovered_sector(
    inner: &mut Inner,
    oid: u64,
    addr: BlockAddr,
    slot: u32,
    entries: &[JournalEntry],
) -> Result<()> {
    // Materialize the object if it was born after the anchor.
    if let std::collections::hash_map::Entry::Vacant(v) = inner.table.entry(oid) {
        let Some(JournalEntry::Create { stamp }) = entries.first() else {
            return Err(S4Error::BadRequest("recovered sector for unknown object"));
        };
        let entry = ObjectEntry::new(ObjectMeta::new(oid, *stamp));
        v.insert(Slot::Cached(Box::new(entry)));
    }
    let Some(Slot::Cached(entry)) = inner.table.get_mut(&oid) else {
        // All anchored objects are Cached during mount.
        return Err(S4Error::BadRequest("recovered sector for evicted object"));
    };
    let mut oldest = None;
    let mut newest = HybridTimestamp::ZERO;
    for e in entries {
        if e.stamp() > entry.meta.modified || matches!(e, JournalEntry::Create { .. }) {
            redo(&mut entry.meta, e);
        }
        oldest.get_or_insert(e.stamp());
        newest = newest.max(e.stamp());
    }
    entry.sectors.push(SectorInfo {
        addr,
        slot,
        oldest: oldest.unwrap_or(HybridTimestamp::ZERO),
        newest,
    });
    entry.meta.journal_head = addr;
    entry.dirty = true;
    inner.next_oid = inner.next_oid.max(oid + 1);
    Ok(())
}

/// Rebuilds the reachable-block set and journal-block refcounts from the
/// recovered object table (mount phase 3).
fn rebuild_liveness<D: BlockDev>(log: &Log<D>, inner: &mut Inner) -> Result<()> {
    inner.live.clear();
    inner.jblock_refs.clear();
    inner.cpblock_refs.clear();
    inner.dblock_refs.clear();
    let audit_blocks: Vec<u64> = inner
        .audit
        .blocks
        .iter()
        .chain(&inner.alerts.blocks)
        .chain(&inner.traces.blocks)
        .map(|a| a.0)
        .collect();
    for a in audit_blocks {
        inner.live.insert(a);
    }
    let oids: Vec<u64> = inner.table.keys().copied().collect();
    for oid in oids {
        let Some(Slot::Cached(entry)) = inner.table.get(&oid) else {
            continue;
        };
        // Current data blocks (resolved through forwarding).
        let mut reach: Vec<u64> = entry
            .meta
            .blocks
            .values()
            .map(|a| entry.resolve_forward(*a).0)
            .collect();
        // Landmark versions pin their block maps.
        for m in &entry.landmarks {
            reach.extend(m.blocks.values().map(|a| a.0));
        }
        // Delta-encoded history: the shared delta blocks are reachable.
        for dref in entry.deltas.values() {
            reach.push(dref.block.0);
            *inner.dblock_refs.entry(dref.block.0).or_insert(0) += 1;
        }
        // Checkpoint storage: chain blocks, or one shared-block reference.
        reach.extend(entry.checkpoint_blocks.iter().map(|a| a.0));
        if !entry.checkpoint_root.is_none() && entry.checkpoint_slot != u32::MAX {
            reach.push(entry.checkpoint_root.0);
            *inner
                .cpblock_refs
                .entry(entry.checkpoint_root.0)
                .or_insert(0) += 1;
        }
        // Journal blocks + refcounts, and history old-pointers.
        let sectors = entry.sectors.clone();
        let forwards_resolve =
            |inner_entry: &ObjectEntry, a: BlockAddr| inner_entry.resolve_forward(a).0;
        let mut history: Vec<u64> = Vec::new();
        for s in &sectors {
            reach.push(s.addr.0);
            let (_o, entries) = read_subsector(log, s.addr, s.slot)?;
            for e in &entries {
                let olds: Vec<BlockAddr> = match e {
                    JournalEntry::Write { changes, .. } => changes.iter().map(|c| c.old).collect(),
                    JournalEntry::Truncate { freed, .. } => freed.iter().map(|c| c.old).collect(),
                    _ => Vec::new(),
                };
                for old in olds {
                    if old.is_none() {
                        continue;
                    }
                    let key = forwards_resolve(entry, old);
                    // Delta-encoded history is accounted through its
                    // shared delta block, not the (released) original.
                    if !entry.deltas.contains_key(&key) {
                        history.push(key);
                    }
                }
            }
        }
        for s in &sectors {
            *inner.jblock_refs.entry(s.addr.0).or_insert(0) += 1;
        }
        for a in reach.into_iter().chain(history) {
            inner.live.insert(a);
        }
    }
    Ok(())
}

fn read_checkpoint_static<D: BlockDev>(
    log: &Log<D>,
    root: BlockAddr,
    slot: u32,
) -> Result<(ObjectEntry, Vec<BlockAddr>)> {
    if root.is_none() {
        return Err(S4Error::NoSuchObject);
    }
    if slot != u32::MAX {
        // Shared checkpoint block.
        let block = log.read_block(root)?;
        let subs = split_container(CPBLOCK_MAGIC, &block)?;
        let blob = subs
            .get(slot as usize)
            .ok_or(S4Error::BadRequest("checkpoint slot out of range"))?;
        let mut entry = ObjectEntry::decode(blob)?;
        entry.checkpoint_slot = slot;
        return Ok((entry, Vec::new()));
    }
    let mut blob = Vec::new();
    let mut blocks = Vec::new();
    let mut addr = root;
    while !addr.is_none() {
        let block = log.read_block(addr)?;
        let next = BlockAddr(u64::from_le_bytes(block[0..8].try_into().unwrap()));
        let len = u32::from_le_bytes(block[8..12].try_into().unwrap()) as usize;
        if 12 + len > block.len() {
            return Err(S4Error::BadRequest("checkpoint chunk length"));
        }
        blob.extend_from_slice(&block[12..12 + len]);
        blocks.push(addr);
        addr = next;
    }
    Ok((ObjectEntry::decode(&blob)?, blocks))
}

fn encode_partition_blob(parts: &[(String, u64)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for (name, oid) in parts {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&oid.to_le_bytes());
    }
    out
}

fn decode_partition_blob(data: &[u8]) -> Result<Vec<(String, u64)>> {
    if data.is_empty() {
        return Ok(Vec::new());
    }
    if data.len() < 4 {
        return Err(S4Error::BadRequest("partition table truncated"));
    }
    let n = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    let mut pos = 4;
    // Untrusted count: entries are >= 10 bytes each.
    let mut out = Vec::with_capacity(n.min(data.len() / 10 + 1));
    for _ in 0..n {
        if pos + 2 > data.len() {
            return Err(S4Error::BadRequest("partition entry truncated"));
        }
        let nl = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        if pos + nl + 8 > data.len() {
            return Err(S4Error::BadRequest("partition name truncated"));
        }
        let name = String::from_utf8(data[pos..pos + nl].to_vec())
            .map_err(|_| S4Error::BadRequest("partition name utf8"))?;
        pos += nl;
        let oid = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
        pos += 8;
        out.push((name, oid));
    }
    Ok(out)
}
