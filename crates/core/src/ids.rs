//! Identifiers and the per-request security context.

use core::fmt;

/// A drive-assigned object identifier (§4.1: "objects exist in a flat
/// namespace managed by the drive ... given a unique identifier by the
/// drive"). Identifiers are never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{}", self.0)
    }
}

/// A user principal, as authenticated by the transport.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UserId(pub u32);

/// A client machine, as authenticated by the transport (§3.2: tracking
/// accesses to a single client machine bounds the scope of direct damage
/// from that machine's compromise).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u32);

/// The drive administrator principal. Administrative commands
/// additionally require the drive's admin token (modeling the paper's
/// "physical access or well-protected cryptographic keys", §3.5).
pub const ADMIN_USER: UserId = UserId(0);

/// Security context attached to every request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestContext {
    /// Requesting user.
    pub user: UserId,
    /// Originating client machine.
    pub client: ClientId,
    /// Present on administrative requests; must match the drive's token.
    pub admin_token: Option<u64>,
}

impl RequestContext {
    /// Context for an ordinary user request.
    pub fn user(user: UserId, client: ClientId) -> Self {
        RequestContext {
            user,
            client,
            admin_token: None,
        }
    }

    /// Context for an administrative request carrying the admin token.
    pub fn admin(client: ClientId, token: u64) -> Self {
        RequestContext {
            user: ADMIN_USER,
            client,
            admin_token: Some(token),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let u = RequestContext::user(UserId(5), ClientId(2));
        assert_eq!(u.user, UserId(5));
        assert!(u.admin_token.is_none());
        let a = RequestContext::admin(ClientId(1), 0xDEAD);
        assert_eq!(a.user, ADMIN_USER);
        assert_eq!(a.admin_token, Some(0xDEAD));
    }

    #[test]
    fn display() {
        assert_eq!(ObjectId(7).to_string(), "obj:7");
    }
}
