//! Identifiers and the per-request security context.

use core::fmt;

/// A drive-assigned object identifier (§4.1: "objects exist in a flat
/// namespace managed by the drive ... given a unique identifier by the
/// drive"). Identifiers are never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{}", self.0)
    }
}

/// A user principal, as authenticated by the transport.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UserId(pub u32);

/// A client machine, as authenticated by the transport (§3.2: tracking
/// accesses to a single client machine bounds the scope of direct damage
/// from that machine's compromise).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u32);

/// The drive administrator principal. Administrative commands
/// additionally require the drive's admin token (modeling the paper's
/// "physical access or well-protected cryptographic keys", §3.5).
pub const ADMIN_USER: UserId = UserId(0);

/// Causal trace context propagated with a request through every layer
/// it touches: client entry → array router → shard worker → mirror
/// members → 2PC prepare/decide and reshard catch-up. Each member drive
/// a traced request reaches persists its trace record as a v2
/// `TraceRecord` carrying these fields, so the whole distributed
/// request can be re-joined on `trace_id` from the per-drive
/// crash-surviving trace streams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Causal trace id; 0 means untraced (records encode as v1).
    pub trace_id: u64,
    /// Dense shard index the request entered the array at.
    pub origin: u8,
    /// Dispatch phase (one of the `PHASE_*` constants).
    pub phase: u8,
}

/// Phase of a record written at the request's entry point (a lone drive
/// dispatch, or the array frontend before any worker stamped it).
pub const PHASE_CLIENT: u8 = 0;
/// Ordinary shard-worker execution on a mirror member.
pub const PHASE_APPLY: u8 = 1;
/// 2PC phase 1: the sub-batch executed under `txn_prepare_at`.
pub const PHASE_PREPARE: u8 = 2;
/// 2PC phase 2: the commit/abort applied by `txn_decide`.
pub const PHASE_DECIDE: u8 = 3;
/// Coordinator decision-note install on a shard-0 member.
pub const PHASE_NOTE: u8 = 4;
/// Reshard snapshot/catch-up write replayed onto a split target.
pub const PHASE_CATCHUP: u8 = 5;

impl TraceCtx {
    /// Human name of a phase byte (unknown bytes print as `phase-N`
    /// via the fallback — callers format those themselves).
    pub fn phase_name(phase: u8) -> &'static str {
        match phase {
            PHASE_CLIENT => "client",
            PHASE_APPLY => "apply",
            PHASE_PREPARE => "prepare",
            PHASE_DECIDE => "decide",
            PHASE_NOTE => "note",
            PHASE_CATCHUP => "catchup",
            _ => "unknown",
        }
    }
}

/// Mints nonzero trace ids: the caller's clock supplies the high bits
/// (ids stay roughly time-ordered and survive restarts without
/// coordination — the persisted streams they join against outlive any
/// process) and a local counter disambiguates ids minted in the same
/// microsecond.
#[derive(Debug, Default)]
pub struct TraceIdGen {
    counter: core::sync::atomic::AtomicU64,
}

impl TraceIdGen {
    /// A fresh generator.
    pub fn new() -> Self {
        TraceIdGen::default()
    }

    /// The next trace id for a request entering at `now_micros`.
    /// Never returns 0 (0 means untraced).
    pub fn next(&self, now_micros: u64) -> u64 {
        let c = self
            .counter
            .fetch_add(1, core::sync::atomic::Ordering::Relaxed);
        ((now_micros << 16) | (c & 0xFFFF)).max(1)
    }
}

/// Security context attached to every request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestContext {
    /// Requesting user.
    pub user: UserId,
    /// Originating client machine.
    pub client: ClientId,
    /// Present on administrative requests; must match the drive's token.
    pub admin_token: Option<u64>,
    /// Causal trace context (default: untraced).
    pub trace: TraceCtx,
}

impl RequestContext {
    /// Context for an ordinary user request.
    pub fn user(user: UserId, client: ClientId) -> Self {
        RequestContext {
            user,
            client,
            admin_token: None,
            trace: TraceCtx::default(),
        }
    }

    /// Context for an administrative request carrying the admin token.
    pub fn admin(client: ClientId, token: u64) -> Self {
        RequestContext {
            user: ADMIN_USER,
            client,
            admin_token: Some(token),
            trace: TraceCtx::default(),
        }
    }

    /// The same context with `trace` attached (builder-style; contexts
    /// are `Copy`).
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let u = RequestContext::user(UserId(5), ClientId(2));
        assert_eq!(u.user, UserId(5));
        assert!(u.admin_token.is_none());
        assert_eq!(u.trace, TraceCtx::default());
        let a = RequestContext::admin(ClientId(1), 0xDEAD);
        assert_eq!(a.user, ADMIN_USER);
        assert_eq!(a.admin_token, Some(0xDEAD));
        let t = TraceCtx {
            trace_id: 7,
            origin: 2,
            phase: PHASE_PREPARE,
        };
        assert_eq!(u.with_trace(t).trace, t);
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let g = TraceIdGen::new();
        assert_ne!(g.next(0), 0, "id 0 means untraced");
        let a = g.next(1_000_000);
        let b = g.next(1_000_000);
        assert_ne!(a, b, "same-microsecond ids must differ");
    }

    #[test]
    fn phase_names() {
        assert_eq!(TraceCtx::phase_name(PHASE_CLIENT), "client");
        assert_eq!(TraceCtx::phase_name(PHASE_CATCHUP), "catchup");
        assert_eq!(TraceCtx::phase_name(99), "unknown");
    }

    #[test]
    fn display() {
        assert_eq!(ObjectId(7).to_string(), "obj:7");
    }
}
