//! Participant-side two-phase-commit behavior of a single drive: the
//! prepare/vote/decide hooks, forward-compensation abort, object locks,
//! and in-doubt recovery across a crash.

use s4_clock::{SimClock, SimDuration};
use s4_core::rpc::LAST_CREATED;
use s4_core::{
    ClientId, DriveConfig, Request, RequestContext, Response, S4Drive, S4Error, UserId,
};
use s4_simdisk::MemDisk;

fn drive() -> S4Drive<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock,
    )
    .unwrap()
}

fn ctx() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

#[test]
fn commit_keeps_effects_and_clears_pending_state() {
    let d = drive();
    let c = ctx();
    let oid = d.op_create(&c, None).unwrap();

    let resps = d
        .txn_prepare(
            &c,
            71,
            &[
                Request::Write {
                    oid,
                    offset: 0,
                    data: b"committed".to_vec(),
                },
                Request::Create,
                Request::Write {
                    oid: LAST_CREATED,
                    offset: 0,
                    data: b"second".to_vec(),
                },
            ],
        )
        .unwrap();
    assert_eq!(resps.len(), 3);
    let Response::Created(new_oid) = resps[1] else {
        panic!("expected Created");
    };
    assert_eq!(d.txn_in_doubt(), vec![(71, d.txn_in_doubt()[0].1)]);

    d.txn_decide(71, true).unwrap();
    assert!(d.txn_in_doubt().is_empty());
    assert_eq!(d.op_read(&c, oid, 0, 64, None).unwrap(), b"committed");
    assert_eq!(d.op_read(&c, new_oid, 0, 64, None).unwrap(), b"second");
    // Deciding again is an idempotent no-op (retried fan-out).
    d.txn_decide(71, true).unwrap();
    d.txn_decide(71, false).unwrap();
    assert_eq!(d.op_read(&c, oid, 0, 64, None).unwrap(), b"committed");
}

#[test]
fn abort_restores_every_kind_of_effect() {
    let d = drive();
    let c = ctx();
    // Pre-transaction state: two objects and a partition name.
    let a = d.op_create(&c, None).unwrap();
    d.op_write(&c, a, 0, b"alpha original content").unwrap();
    d.op_setattr(&c, a, vec![1, 2, 3]).unwrap();
    let victim = d.op_create(&c, None).unwrap();
    d.op_write(&c, victim, 0, b"victim").unwrap();
    d.op_pcreate(&c, "keep", a).unwrap();
    d.op_sync(&c).unwrap();
    let pre_a = d.op_read(&c, a, 0, 1024, None).unwrap();
    let pre_attrs = d.op_getattr(&c, a, None).unwrap().opaque;

    let resps = d
        .txn_prepare(
            &c,
            72,
            &[
                Request::Write {
                    oid: a,
                    offset: 0,
                    data: b"CLOBBERED".to_vec(),
                },
                Request::Truncate { oid: a, len: 9 },
                Request::SetAttr {
                    oid: a,
                    attrs: vec![9, 9],
                },
                Request::Delete { oid: victim },
                Request::Create,
                Request::Write {
                    oid: LAST_CREATED,
                    offset: 0,
                    data: b"ephemeral".to_vec(),
                },
                Request::PCreate {
                    name: "txn-name".into(),
                    oid: a,
                },
            ],
        )
        .unwrap();
    let Response::Created(ephemeral) = resps[4] else {
        panic!("expected Created");
    };
    // Mid-transaction the effects are visible (read-uncommitted).
    assert_eq!(d.op_read(&c, a, 0, 64, None).unwrap(), b"CLOBBERED");
    assert!(matches!(
        d.op_read(&c, victim, 0, 8, None),
        Err(S4Error::NoSuchObject)
    ));

    d.txn_decide(72, false).unwrap();
    assert!(d.txn_in_doubt().is_empty());
    // Content, size, and attrs restored.
    assert_eq!(d.op_read(&c, a, 0, 1024, None).unwrap(), pre_a);
    assert_eq!(d.op_getattr(&c, a, None).unwrap().opaque, pre_attrs);
    // The deleted object is live again with its content.
    assert_eq!(d.op_read(&c, victim, 0, 64, None).unwrap(), b"victim");
    // The created object is dead again.
    assert!(matches!(
        d.op_read(&c, ephemeral, 0, 8, None),
        Err(S4Error::NoSuchObject)
    ));
    // The transaction's name is gone; the pre-existing one remains.
    let parts = d.op_plist(&c, None).unwrap();
    assert!(parts.iter().any(|(n, _)| n == "keep"));
    assert!(!parts.iter().any(|(n, _)| n == "txn-name"));
}

#[test]
fn locks_reject_outside_mutations_until_resolved() {
    let d = drive();
    let c = ctx();
    let a = d.op_create(&c, None).unwrap();
    d.op_write(&c, a, 0, b"before").unwrap();

    d.txn_prepare(
        &c,
        73,
        &[Request::Write {
            oid: a,
            offset: 0,
            data: b"pinned".to_vec(),
        }],
    )
    .unwrap();
    assert_eq!(d.txn_lock_holder(a), Some(73));
    // Outside mutation refused; read still allowed.
    assert!(matches!(
        d.dispatch(
            &c,
            &Request::Write {
                oid: a,
                offset: 0,
                data: b"intruder".to_vec()
            }
        ),
        Err(S4Error::BadRequest(_))
    ));
    assert_eq!(
        d.dispatch(
            &c,
            &Request::Read {
                oid: a,
                offset: 0,
                len: 16,
                time: None
            }
        )
        .unwrap(),
        Response::Data(b"pinned".to_vec())
    );
    // A second transaction touching the same object votes no (errors).
    assert!(d
        .txn_prepare(
            &c,
            74,
            &[Request::Write {
                oid: a,
                offset: 0,
                data: b"overlap".to_vec(),
            }],
        )
        .is_err());
    assert_eq!(d.txn_in_doubt(), vec![(73, d.txn_in_doubt()[0].1)]);

    d.txn_decide(73, true).unwrap();
    assert_eq!(d.txn_lock_holder(a), None);
    d.op_write(&c, a, 0, b"after ").unwrap();
    assert_eq!(d.op_read(&c, a, 0, 6, None).unwrap(), b"after ");
}

#[test]
fn in_doubt_survives_a_crash_and_mount_abort_converges() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let c = ctx();
    let a = d.op_create(&c, None).unwrap();
    d.op_write(&c, a, 0, b"stable state").unwrap();
    d.op_sync(&c).unwrap();
    let pre = d.op_read(&c, a, 0, 64, None).unwrap();

    d.txn_prepare(
        &c,
        75,
        &[Request::Write {
            oid: a,
            offset: 0,
            data: b"doomed write".to_vec(),
        }],
    )
    .unwrap();
    // Crash after the vote, before any decision.
    let dev = d.crash();
    let d = S4Drive::mount(dev, DriveConfig::small_test(), clock.clone()).unwrap();
    let open = d.txn_in_doubt();
    assert_eq!(open.len(), 1);
    assert_eq!(open[0].0, 75);
    // Locks are rebuilt from the recovered log: the dispatcher still
    // refuses outside mutations of the pinned object.
    assert_eq!(d.txn_lock_holder(a), Some(75));
    assert!(matches!(
        d.dispatch(
            &c,
            &Request::Write {
                oid: a,
                offset: 0,
                data: b"intruder".to_vec()
            }
        ),
        Err(S4Error::BadRequest(_))
    ));

    // Presumed abort: no decision note means roll back.
    d.txn_decide(75, false).unwrap();
    assert_eq!(d.op_read(&c, a, 0, 64, None).unwrap(), pre);
    let attrs_after_abort = d.op_getattr(&c, a, None).unwrap();

    // A second crash/mount finds nothing in doubt, and re-deciding is a
    // no-op — recovery is idempotent.
    let dev = d.crash();
    let d = S4Drive::mount(dev, DriveConfig::small_test(), clock).unwrap();
    assert!(d.txn_in_doubt().is_empty());
    assert_eq!(d.txn_lock_holder(a), None);
    d.txn_decide(75, false).unwrap();
    assert_eq!(d.op_read(&c, a, 0, 64, None).unwrap(), pre);
    assert_eq!(d.op_getattr(&c, a, None).unwrap(), attrs_after_abort);
}

#[test]
fn blanket_compensation_after_a_mid_prepare_crash() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let c = ctx();
    let a = d.op_create(&c, None).unwrap();
    d.op_write(&c, a, 0, b"pre-txn").unwrap();
    d.op_sync(&c).unwrap();
    let pre = d.op_read(&c, a, 0, 64, None).unwrap();

    // Simulate a crash in the middle of prepare: the Prepared record is
    // durable, some effects executed, but the vote never flushed.
    d.txn_begin(76).unwrap();
    d.op_write(&c, a, 0, b"torn effect").unwrap();
    let fresh = d.op_create(&c, None).unwrap();
    d.op_sync(&c).unwrap();

    let dev = d.crash();
    let d = S4Drive::mount(dev, DriveConfig::small_test(), clock).unwrap();
    let open = d.txn_in_doubt();
    assert_eq!(open.len(), 1, "prepared-without-vote is in doubt");

    // A vote that never flushed can never have produced a commit
    // decision, so recovery aborts: everything after t0 is restored.
    d.txn_decide(76, false).unwrap();
    assert_eq!(d.op_read(&c, a, 0, 64, None).unwrap(), pre);
    assert!(matches!(
        d.op_read(&c, fresh, 0, 8, None),
        Err(S4Error::NoSuchObject)
    ));
    assert!(d.txn_in_doubt().is_empty());
}
