//! Mirror-resync round trip (DESIGN §6g): exporting a drive's logical
//! state with `resync_image` and replaying it with `format_from_image`
//! must reproduce every live object and all three reserved streams on
//! the replacement device.

use s4_clock::{SimClock, SimDuration};
use s4_core::{
    AclEntry, AclTable, ClientId, DriveConfig, ObjectId, Perm, RequestContext, S4Drive, S4Error,
    UserId,
};
use s4_simdisk::MemDisk;

fn admin() -> RequestContext {
    RequestContext::admin(ClientId(0), 42)
}

/// Builds a drive with a representative mix of state: plain objects,
/// attributes, custom ACLs, a sparse object, an empty-but-touched
/// object, a deleted object, and a system alert.
fn populated_drive(clock: &SimClock) -> S4Drive<MemDisk> {
    let drive = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let alice = RequestContext::user(UserId(1), ClientId(1));

    let a = drive.op_create(&alice, None).unwrap();
    drive.op_write(&alice, a, 0, b"first version").unwrap();
    clock.advance(SimDuration::from_secs(3));
    drive.op_write(&alice, a, 6, b"overwrite").unwrap();
    drive.op_setattr(&alice, a, vec![7, 7, 7]).unwrap();

    // Custom ACL (recovery flag on a second user).
    let mut table = AclTable::owner_default(UserId(1));
    table.set(AclEntry {
        user: UserId(2),
        perm: Perm::READ.union(Perm::RECOVERY),
    });
    let b = drive.op_create(&alice, Some(table)).unwrap();
    drive.op_write(&alice, b, 10_000, b"sparse tail").unwrap();

    // Created and truncated back to empty at a later time.
    let c = drive.op_create(&alice, None).unwrap();
    clock.advance(SimDuration::from_secs(2));
    drive.op_truncate(&alice, c, 0).unwrap();

    // Deleted objects are not carried over.
    let d = drive.op_create(&alice, None).unwrap();
    drive.op_write(&alice, d, 0, b"doomed").unwrap();
    drive.op_delete(&alice, d).unwrap();

    drive.system_alert("array-degraded", "member 1 of shard 0 died");
    drive.op_sync(&admin()).unwrap();
    drive
}

#[test]
fn image_replay_reproduces_objects_and_streams() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let src = populated_drive(&clock);
    let adm = admin();

    let image = src.resync_image(&adm).unwrap();
    let dst = S4Drive::format_from_image(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
        &image,
    )
    .unwrap();

    // Same live objects, same per-object logical digests.
    let src_ids = src.live_object_ids(&adm).unwrap();
    assert_eq!(src_ids, dst.live_object_ids(&adm).unwrap());
    assert!(src_ids.len() >= 4); // partition object + a, b, c
    for &oid in &src_ids {
        assert_eq!(
            src.object_digest(&adm, ObjectId(oid)).unwrap(),
            dst.object_digest(&adm, ObjectId(oid)).unwrap(),
            "object {oid} diverged after replay"
        );
    }

    // The deleted object stays deleted on the replica.
    let alice = RequestContext::user(UserId(1), ClientId(1));
    let doomed = src_ids.iter().copied().max().unwrap() + 1;
    assert!(!src_ids.contains(&doomed));
    assert_eq!(
        dst.op_read(&alice, ObjectId(doomed), 0, 8, None),
        Err(S4Error::NoSuchObject)
    );

    // Reserved streams decode identically.
    assert_eq!(
        src.read_audit_records(&adm).unwrap(),
        dst.read_audit_records(&adm).unwrap()
    );
    assert_eq!(src.read_alerts(&adm).unwrap(), dst.read_alerts(&adm).unwrap());
    assert_eq!(src.read_traces(&adm).unwrap(), dst.read_traces(&adm).unwrap());

    // Id allocation resumes past the source's floor — no id reuse.
    let fresh = dst.op_create(&alice, None).unwrap();
    assert!(fresh.0 >= image.next_oid);

    // Contents are readable through the normal client path too.
    let a = src_ids[1]; // first dynamic object
    assert_eq!(
        src.op_read(&alice, ObjectId(a), 0, 64, None).unwrap(),
        dst.op_read(&alice, ObjectId(a), 0, 64, None).unwrap()
    );
}

#[test]
fn replayed_drive_survives_remount() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let src = populated_drive(&clock);
    let adm = admin();

    let image = src.resync_image(&adm).unwrap();
    let dst = S4Drive::format_from_image(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
        &image,
    )
    .unwrap();
    let digest = dst.state_digest();
    let dev = dst.unmount().unwrap();
    let dst = S4Drive::mount(dev, DriveConfig::small_test(), clock.clone()).unwrap();
    assert_eq!(dst.state_digest(), digest, "remount must be idempotent");
    for &oid in &src.live_object_ids(&adm).unwrap() {
        assert_eq!(
            src.object_digest(&adm, ObjectId(oid)).unwrap(),
            dst.object_digest(&adm, ObjectId(oid)).unwrap()
        );
    }
    assert_eq!(src.read_alerts(&adm).unwrap(), dst.read_alerts(&adm).unwrap());
}

#[test]
fn resync_endpoints_require_admin() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let drive = populated_drive(&clock);
    let alice = RequestContext::user(UserId(1), ClientId(1));
    assert_eq!(
        drive.resync_image(&alice).unwrap_err(),
        S4Error::AccessDenied
    );
    assert_eq!(
        drive.live_object_ids(&alice).unwrap_err(),
        S4Error::AccessDenied
    );
    assert_eq!(
        drive.object_digest(&alice, ObjectId(4)).unwrap_err(),
        S4Error::AccessDenied
    );
}
