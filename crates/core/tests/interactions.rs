//! Cross-feature interaction tests: object-cache eviction, delta
//! compaction, landmarks, cleaning, and crash recovery composed.

use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, ObjectId, RequestContext, S4Drive, UserId};
use s4_simdisk::MemDisk;

fn ctx() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

fn small_cache_drive(entries: usize) -> S4Drive<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let config = DriveConfig {
        object_cache_entries: entries,
        ..DriveConfig::small_test()
    };
    S4Drive::format(MemDisk::with_capacity_bytes(96 << 20), config, clock).unwrap()
}

#[test]
fn evicted_objects_round_trip_deltas_and_landmarks() {
    let d = small_cache_drive(3);
    let text = "some versioned source file contents\n".repeat(80);
    // Several objects so eviction cycles them through checkpoints.
    let mut oids = Vec::new();
    let mut marks = Vec::new();
    for i in 0..8 {
        let oid = d.op_create(&ctx(), None).unwrap();
        d.op_write(&ctx(), oid, 0, text.as_bytes()).unwrap();
        let v1 = d.now();
        d.clock().advance(SimDuration::from_millis(50));
        let mut v = text.clone().into_bytes();
        v[0] = b'A' + i as u8;
        d.op_write(&ctx(), oid, 0, &v).unwrap();
        d.op_sync(&ctx()).unwrap();
        d.op_mark_landmark(&ctx(), oid, v1).unwrap();
        oids.push(oid);
        marks.push(v1);
    }
    d.compact_history().unwrap();
    // Churn more objects through the 3-entry cache so everything above
    // gets evicted and reloaded.
    for _ in 0..10 {
        let o = d.op_create(&ctx(), None).unwrap();
        d.op_write(&ctx(), o, 0, b"filler").unwrap();
        d.op_sync(&ctx()).unwrap();
    }
    for (i, oid) in oids.iter().enumerate() {
        // Landmark version reads byte-exactly after eviction + reload.
        let got = d.op_read(&ctx(), *oid, 0, 1 << 16, Some(marks[i])).unwrap();
        assert_eq!(got, text.as_bytes(), "object {i}");
        assert_eq!(d.landmarks(&ctx(), *oid).unwrap().len(), 1, "object {i}");
    }
}

#[test]
fn crash_after_compaction_without_anchor_recovers_originals() {
    // Compaction releases original history blocks into pending-free
    // segments; a crash before the next anchor must still read every
    // version from the anchored (pre-compaction) state.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(96 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let oid = d.op_create(&ctx(), None).unwrap();
    let text = "crash-safety line\n".repeat(100);
    let mut times = Vec::new();
    for r in 0..6 {
        let mut v = text.clone().into_bytes();
        v[0] = b'0' + r;
        d.op_write(&ctx(), oid, 0, &v).unwrap();
        d.op_sync(&ctx()).unwrap();
        times.push(d.now());
        clock.advance(SimDuration::from_millis(20));
    }
    // Make the pre-compaction state durable, then compact WITHOUT
    // anchoring afterward.
    d.force_anchor().unwrap();
    let snapshots: Vec<Vec<u8>> = times
        .iter()
        .map(|t| d.op_read(&ctx(), oid, 0, 1 << 16, Some(*t)).unwrap())
        .collect();
    d.compact_history().unwrap();

    // Crash.
    let dev = d.crash();
    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap();
    for (i, t) in times.iter().enumerate() {
        let got = d2.op_read(&ctx(), oid, 0, 1 << 16, Some(*t)).unwrap();
        assert_eq!(got, snapshots[i], "version {i} after crash");
    }
}

#[test]
fn cleaning_relocates_delta_blocks_correctly() {
    // Force churn + compaction + expiry + copy-cleaning, then verify
    // every retained version still materializes.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let text = "relocation fodder statement;\n".repeat(70);
    let mut oids: Vec<ObjectId> = Vec::new();
    let mut times = Vec::new();
    for i in 0..12 {
        let oid = d.op_create(&ctx(), None).unwrap();
        let mut v = text.clone().into_bytes();
        v[0] = b'a' + i as u8;
        d.op_write(&ctx(), oid, 0, &v).unwrap();
        clock.advance(SimDuration::from_millis(10));
        v[1] = b'Z';
        d.op_write(&ctx(), oid, 0, &v).unwrap();
        d.op_sync(&ctx()).unwrap();
        oids.push(oid);
        times.push(d.now());
        clock.advance(SimDuration::from_millis(10));
    }
    d.compact_history().unwrap();
    // Delete half the objects and age them out to create cleanable
    // garbage mixed with live delta blocks.
    for oid in &oids[..6] {
        d.op_delete(&ctx(), *oid).unwrap();
    }
    d.op_sync(&ctx()).unwrap();
    clock.advance(SimDuration::from_secs(7200));
    d.expire_versions().unwrap();
    d.clean().unwrap();
    d.clean().unwrap();
    d.force_anchor().unwrap();

    // Survivors' current and latest-version reads are intact.
    for (i, oid) in oids.iter().enumerate().skip(6) {
        let cur = d.op_read(&ctx(), *oid, 0, 1 << 16, None).unwrap();
        assert_eq!(cur[0], b'a' + i as u8);
        assert_eq!(cur[1], b'Z');
        let at = d.op_read(&ctx(), *oid, 0, 1 << 16, Some(times[i])).unwrap();
        assert_eq!(at, cur);
    }
}
