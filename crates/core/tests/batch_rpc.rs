//! Batched RPC semantics (§4.1.2): ordering, the LAST_CREATED
//! placeholder, per-sub-request auditing, and failure behavior.

use s4_clock::{SimClock, SimDuration};
use s4_core::rpc::LAST_CREATED;
use s4_core::{
    ClientId, DriveConfig, ObjectId, Request, RequestContext, Response, S4Drive, S4Error, UserId,
};
use s4_simdisk::MemDisk;

fn drive() -> S4Drive<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock,
    )
    .unwrap()
}

#[test]
fn create_setattr_write_sync_in_one_round_trip() {
    let d = drive();
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let resp = d
        .dispatch(
            &ctx,
            &Request::Batch(vec![
                Request::Create,
                Request::SetAttr {
                    oid: LAST_CREATED,
                    attrs: vec![1, 2, 3],
                },
                Request::Write {
                    oid: LAST_CREATED,
                    offset: 0,
                    data: b"batched payload".to_vec(),
                },
                Request::Sync,
            ]),
        )
        .unwrap();
    let Response::Batch(rs) = resp else {
        panic!("expected batch response");
    };
    assert_eq!(rs.len(), 4);
    let Response::Created(oid) = rs[0] else {
        panic!("first sub-response must be Created");
    };
    // Effects landed.
    let attrs = d.op_getattr(&ctx, oid, None).unwrap();
    assert_eq!(attrs.opaque, vec![1, 2, 3]);
    assert_eq!(
        d.op_read(&ctx, oid, 0, 64, None).unwrap(),
        b"batched payload"
    );
    // Each sub-request was audited individually.
    let admin = RequestContext::admin(ClientId(0), 42);
    let records = d.read_audit_records(&admin).unwrap();
    assert!(records.len() >= 4);
}

#[test]
fn failure_aborts_the_rest_but_keeps_earlier_effects() {
    let d = drive();
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let oid = d.op_create(&ctx, None).unwrap();
    let err = d
        .dispatch(
            &ctx,
            &Request::Batch(vec![
                Request::Write {
                    oid,
                    offset: 0,
                    data: b"applied".to_vec(),
                },
                Request::Read {
                    oid: ObjectId(999_999),
                    offset: 0,
                    len: 1,
                    time: None,
                }, // fails
                Request::Truncate { oid, len: 0 }, // must not run
            ]),
        )
        .unwrap_err();
    // The error names the failing index and how much of the batch ran.
    assert_eq!(
        err,
        S4Error::BatchFailed {
            completed: 1,
            failed_at: 1,
            error: Box::new(S4Error::NoSuchObject),
        }
    );
    // The first write stuck; the truncate never ran.
    assert_eq!(d.op_read(&ctx, oid, 0, 16, None).unwrap(), b"applied");
}

#[test]
fn placeholder_without_create_and_nesting_are_rejected() {
    let d = drive();
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    assert!(matches!(
        d.dispatch(
            &ctx,
            &Request::Batch(vec![Request::GetAttr {
                oid: LAST_CREATED,
                time: None
            }])
        ),
        Err(S4Error::BatchFailed { failed_at: 0, error, .. })
            if matches!(*error, S4Error::BadRequest(_))
    ));
    assert!(matches!(
        d.dispatch(
            &ctx,
            &Request::Batch(vec![Request::Batch(vec![Request::Sync])])
        ),
        Err(S4Error::BatchFailed { failed_at: 0, error, .. })
            if matches!(*error, S4Error::BadRequest(_))
    ));
}

#[test]
fn batch_wire_codec_round_trips() {
    let req = Request::Batch(vec![
        Request::Create,
        Request::Write {
            oid: LAST_CREATED,
            offset: 8,
            data: vec![9; 100],
        },
        Request::Sync,
    ]);
    assert_eq!(Request::decode(&req.encode()).unwrap(), req);

    let resp = Response::Batch(vec![
        Response::Created(ObjectId(5)),
        Response::Ok,
        Response::Ok,
    ]);
    assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);

    // Nested batches rejected at decode time too.
    let nested = Request::Batch(vec![Request::Batch(vec![Request::Sync])]);
    assert!(Request::decode(&nested.encode()).is_err());
}
