//! Tests for the cleaner's differencing pass (§4.2.2): history blocks
//! re-encoded as cross-version deltas must stay byte-exact across reads,
//! expiry, administrative flushes, and remounts — while releasing space.

use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, ObjectId, RequestContext, S4Drive, UserId};
use s4_simdisk::MemDisk;

fn drive() -> S4Drive<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    S4Drive::format(
        MemDisk::with_capacity_bytes(96 << 20),
        DriveConfig::small_test(),
        clock,
    )
    .unwrap()
}

fn ctx() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

/// Writes `rounds` similar versions of one object (text-like, small
/// mutations) and returns the version timestamps.
fn churn(d: &S4Drive<MemDisk>, oid: ObjectId, rounds: usize) -> Vec<s4_clock::SimTime> {
    let ctx = ctx();
    let base = "fn handler(conn: &mut Conn) -> io::Result<()> { conn.flush() }\n".repeat(60);
    let mut times = Vec::new();
    for r in 0..rounds {
        let mut v = base.clone().into_bytes();
        let at = 64 * (r % 40);
        v[at..at + 8].copy_from_slice(format!("REV{:05}", r).as_bytes());
        d.op_write(&ctx, oid, 0, &v).unwrap();
        d.op_sync(&ctx).unwrap();
        times.push(d.now());
        d.clock().advance(SimDuration::from_millis(20));
    }
    times
}

#[test]
fn compaction_preserves_every_version() {
    let d = drive();
    let oid = d.op_create(&ctx(), None).unwrap();
    let times = churn(&d, oid, 12);

    // Snapshot every version's contents before compaction.
    let before: Vec<Vec<u8>> = times
        .iter()
        .map(|t| d.op_read(&ctx(), oid, 0, 1 << 16, Some(*t)).unwrap())
        .collect();

    let (encoded, released) = d.compact_history().unwrap();
    assert!(encoded > 5, "expected several encodings, got {encoded}");
    assert_eq!(encoded, released);

    // Every version still reads byte-exactly, including cross-block ones.
    for (i, t) in times.iter().enumerate() {
        let after = d.op_read(&ctx(), oid, 0, 1 << 16, Some(*t)).unwrap();
        assert_eq!(after, before[i], "version {i} corrupted by compaction");
    }
    // The current version too.
    assert_eq!(
        d.op_read(&ctx(), oid, 0, 1 << 16, None).unwrap(),
        *before.last().unwrap()
    );
}

#[test]
fn compaction_releases_space() {
    let d = drive();
    let oid = d.op_create(&ctx(), None).unwrap();
    churn(&d, oid, 30);
    let before = d.utilization();
    let (encoded, _) = d.compact_history().unwrap();
    assert!(encoded >= 20);
    // Free the dead segments the released blocks left behind.
    d.log().free_dead_segments();
    d.force_anchor().unwrap();
    let after = d.utilization();
    assert!(
        after < before * 0.8,
        "utilization should drop: {before:.4} -> {after:.4}"
    );
}

#[test]
fn compaction_is_idempotent() {
    let d = drive();
    let oid = d.op_create(&ctx(), None).unwrap();
    let times = churn(&d, oid, 8);
    let (e1, _) = d.compact_history().unwrap();
    assert!(e1 > 0);
    let (e2, _) = d.compact_history().unwrap();
    assert_eq!(e2, 0, "second pass must find nothing new");
    for t in &times {
        assert!(d.op_read(&ctx(), oid, 0, 1 << 16, Some(*t)).is_ok());
    }
}

#[test]
fn compacted_history_survives_remount() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(96 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let oid = d.op_create(&ctx(), None).unwrap();
    let times = churn(&d, oid, 10);
    let before: Vec<Vec<u8>> = times
        .iter()
        .map(|t| d.op_read(&ctx(), oid, 0, 1 << 16, Some(*t)).unwrap())
        .collect();
    d.compact_history().unwrap();

    let dev = d.unmount().unwrap();
    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap();
    for (i, t) in times.iter().enumerate() {
        let data = d2.op_read(&ctx(), oid, 0, 1 << 16, Some(*t)).unwrap();
        assert_eq!(data, before[i], "version {i} after remount");
    }
}

#[test]
fn expiry_reclaims_compacted_versions() {
    let d = drive();
    let oid = d.op_create(&ctx(), None).unwrap();
    let times = churn(&d, oid, 10);
    d.compact_history().unwrap();

    // Age everything past the (1 hour) window except the last version.
    d.clock().advance(SimDuration::from_secs(7200));
    d.op_truncate(&ctx(), oid, 0).unwrap();
    d.op_write(&ctx(), oid, 0, b"fresh current version")
        .unwrap();
    d.op_sync(&ctx()).unwrap();
    let released = d.expire_versions().unwrap();
    assert!(released > 0);

    // Old versions gone, current intact.
    assert!(d.op_read(&ctx(), oid, 0, 64, Some(times[0])).is_err());
    assert_eq!(
        d.op_read(&ctx(), oid, 0, 64, None).unwrap(),
        b"fresh current version"
    );
}

#[test]
fn flusho_rebases_dependent_deltas() {
    // Expunge a middle version that another version's delta is based on:
    // the dependent must be re-materialized, not corrupted.
    let d = drive();
    let admin = RequestContext::admin(ClientId(0), 42);
    let oid = d.op_create(&ctx(), None).unwrap();
    let times = churn(&d, oid, 6);
    let v1 = d.op_read(&admin, oid, 0, 1 << 16, Some(times[1])).unwrap();
    d.compact_history().unwrap();

    // Flush version 2 (whose content is the base of version 1's delta).
    let from = times[2].saturating_sub(SimDuration::from_millis(5));
    d.op_flusho(&admin, oid, from, times[2]).unwrap();

    // Version 1 still reads exactly.
    let v1_after = d.op_read(&admin, oid, 0, 1 << 16, Some(times[1])).unwrap();
    assert_eq!(v1_after, v1);
    // Version 2 now resolves to version 1's content (it was expunged).
    let v2_after = d.op_read(&admin, oid, 0, 1 << 16, Some(times[2])).unwrap();
    assert_eq!(v2_after, v1);
}
