//! Behavioral tests for the S4 drive: comprehensive versioning,
//! time-based access, the Recovery flag, auditing, expiry, cleaning,
//! administrative flushes, and crash recovery.

use s4_clock::{SimClock, SimDuration, SimTime};
use s4_core::{
    AclEntry, DriveConfig, Perm, Request, RequestContext, Response, S4Drive, S4Error, UserId,
};
use s4_simdisk::MemDisk;

const ADMIN_TOKEN: u64 = 42;

fn drive() -> S4Drive<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock).unwrap()
}

fn alice() -> RequestContext {
    RequestContext::user(UserId(10), s4_core::ClientId(1))
}

fn bob() -> RequestContext {
    RequestContext::user(UserId(20), s4_core::ClientId(2))
}

fn admin() -> RequestContext {
    RequestContext::admin(s4_core::ClientId(9), ADMIN_TOKEN)
}

fn tick(d: &S4Drive<MemDisk>) {
    d.clock().advance(SimDuration::from_millis(10));
}

#[test]
fn create_write_read_roundtrip() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"hello world").unwrap();
    d.op_sync(&ctx).unwrap();
    assert_eq!(d.op_read(&ctx, oid, 0, 1024, None).unwrap(), b"hello world");
    // Partial reads.
    assert_eq!(d.op_read(&ctx, oid, 6, 5, None).unwrap(), b"world");
    // Reads past EOF are empty.
    assert!(d.op_read(&ctx, oid, 100, 10, None).unwrap().is_empty());
}

#[test]
fn cross_block_write_and_overwrite() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    let big: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    d.op_write(&ctx, oid, 0, &big).unwrap();
    assert_eq!(d.op_read(&ctx, oid, 0, 20_000, None).unwrap(), big);
    // Overwrite a span crossing block boundaries.
    d.op_write(&ctx, oid, 4000, &[0xEE; 300]).unwrap();
    let out = d.op_read(&ctx, oid, 0, 20_000, None).unwrap();
    assert_eq!(&out[..4000], &big[..4000]);
    assert!(out[4000..4300].iter().all(|&b| b == 0xEE));
    assert_eq!(&out[4300..], &big[4300..]);
}

#[test]
fn append_and_truncate() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    assert_eq!(d.op_append(&ctx, oid, b"aaaa").unwrap(), 4);
    assert_eq!(d.op_append(&ctx, oid, b"bbbb").unwrap(), 8);
    d.op_truncate(&ctx, oid, 6).unwrap();
    assert_eq!(d.op_read(&ctx, oid, 0, 100, None).unwrap(), b"aaaabb");
    let attrs = d.op_getattr(&ctx, oid, None).unwrap();
    assert_eq!(attrs.size, 6);
}

#[test]
fn every_modification_is_a_version() {
    // The §3.3 requirement: a separate version per modification, not per
    // close.
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    let mut times = Vec::new();
    for i in 0..5u8 {
        tick(&d);
        d.op_write(&ctx, oid, 0, &[b'0' + i; 4]).unwrap();
        times.push(d.now());
    }
    d.op_sync(&ctx).unwrap();
    for (i, t) in times.iter().enumerate() {
        let data = d.op_read(&ctx, oid, 0, 4, Some(*t)).unwrap();
        assert_eq!(data, vec![b'0' + i as u8; 4], "version {i}");
    }
}

#[test]
fn time_based_reads_see_old_sizes_and_attrs() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"version one is long").unwrap();
    d.op_setattr(&ctx, oid, vec![1]).unwrap();
    let t1 = d.now();
    tick(&d);
    d.op_truncate(&ctx, oid, 7).unwrap();
    d.op_setattr(&ctx, oid, vec![2]).unwrap();
    d.op_sync(&ctx).unwrap();

    let now_attrs = d.op_getattr(&ctx, oid, None).unwrap();
    assert_eq!(now_attrs.size, 7);
    assert_eq!(now_attrs.opaque, vec![2]);

    let old_attrs = d.op_getattr(&ctx, oid, Some(t1)).unwrap();
    assert_eq!(old_attrs.size, 19);
    assert_eq!(old_attrs.opaque, vec![1]);
    assert_eq!(
        d.op_read(&ctx, oid, 0, 100, Some(t1)).unwrap(),
        b"version one is long"
    );
}

#[test]
fn deleted_files_recoverable_within_window() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"exploit-tool-evidence").unwrap();
    let before_delete = d.now();
    tick(&d);
    d.op_delete(&ctx, oid).unwrap();
    d.op_sync(&ctx).unwrap();

    // Live read fails.
    assert_eq!(
        d.op_read(&ctx, oid, 0, 100, None).unwrap_err(),
        S4Error::NoSuchObject
    );
    // Time-based read recovers the contents.
    assert_eq!(
        d.op_read(&ctx, oid, 0, 100, Some(before_delete)).unwrap(),
        b"exploit-tool-evidence"
    );
}

#[test]
fn acl_enforcement_and_recovery_flag() {
    let d = drive();
    let oid = d.op_create(&alice(), None).unwrap();
    d.op_write(&alice(), oid, 0, b"v1").unwrap();
    let t1 = d.now();
    tick(&d);
    d.op_write(&alice(), oid, 0, b"v2").unwrap();
    d.op_sync(&alice()).unwrap();

    // Bob has no entry: everything denied.
    assert_eq!(
        d.op_read(&bob(), oid, 0, 10, None).unwrap_err(),
        S4Error::AccessDenied
    );
    // Grant Bob read WITHOUT recovery.
    d.op_set_acl(
        &alice(),
        oid,
        AclEntry {
            user: UserId(20),
            perm: Perm::READ,
        },
    )
    .unwrap();
    assert_eq!(d.op_read(&bob(), oid, 0, 10, None).unwrap(), b"v2");
    // Current version via time parameter is fine with plain READ...
    let now = d.now();
    assert_eq!(d.op_read(&bob(), oid, 0, 10, Some(now)).unwrap(), b"v2");
    // ...but the history pool needs the Recovery flag (§3.4).
    assert_eq!(
        d.op_read(&bob(), oid, 0, 10, Some(t1)).unwrap_err(),
        S4Error::AccessDenied
    );
    // The administrator can always read history.
    assert_eq!(d.op_read(&admin(), oid, 0, 10, Some(t1)).unwrap(), b"v1");
    // With the Recovery flag, Bob can too... but the flag must exist in
    // the ACL *of that version*; granting it now only covers versions
    // from now on.
    d.op_set_acl(
        &alice(),
        oid,
        AclEntry {
            user: UserId(20),
            perm: Perm::READ.union(Perm::RECOVERY),
        },
    )
    .unwrap();
    tick(&d);
    d.op_write(&alice(), oid, 0, b"v3").unwrap();
    let t3 = d.now();
    tick(&d);
    d.op_write(&alice(), oid, 0, b"v4").unwrap();
    assert_eq!(d.op_read(&bob(), oid, 0, 10, Some(t3)).unwrap(), b"v3");
    // The v1-era ACL still denies Bob.
    assert_eq!(
        d.op_read(&bob(), oid, 0, 10, Some(t1)).unwrap_err(),
        S4Error::AccessDenied
    );
}

#[test]
fn acl_history_is_versioned() {
    let d = drive();
    let oid = d.op_create(&alice(), None).unwrap();
    let t1 = d.now();
    tick(&d);
    d.op_set_acl(
        &alice(),
        oid,
        AclEntry {
            user: UserId(20),
            perm: Perm::READ,
        },
    )
    .unwrap();
    d.op_sync(&alice()).unwrap();
    // Current table has Bob; the t1 table does not.
    let now_entry = d
        .op_get_acl_by_user(&alice(), oid, UserId(20), None)
        .unwrap();
    assert!(now_entry.is_some());
    let old_entry = d
        .op_get_acl_by_user(&admin(), oid, UserId(20), Some(t1))
        .unwrap();
    assert!(old_entry.is_none());
    // Index-based lookups work too.
    let e0 = d
        .op_get_acl_by_index(&alice(), oid, 0, None)
        .unwrap()
        .unwrap();
    assert_eq!(e0.user, UserId(10));
}

#[test]
fn audit_log_records_all_requests_including_denied() {
    let d = drive();
    let oid = match d.dispatch(&alice(), &Request::Create).unwrap() {
        Response::Created(oid) => oid,
        other => panic!("{other:?}"),
    };
    d.dispatch(
        &alice(),
        &Request::Write {
            oid,
            offset: 0,
            data: b"x".to_vec(),
        },
    )
    .unwrap();
    // A denied request is still audited.
    let denied = d.dispatch(
        &bob(),
        &Request::Read {
            oid,
            offset: 0,
            len: 10,
            time: None,
        },
    );
    assert!(denied.is_err());
    let records = d.read_audit_records(&admin()).unwrap();
    assert!(records.len() >= 3);
    let denied_rec = records
        .iter()
        .find(|r| r.user == UserId(20))
        .expect("denied read audited");
    assert!(!denied_rec.ok);
    assert_eq!(denied_rec.object, oid);
    // Ordinary users cannot read the audit log.
    assert_eq!(
        d.read_audit_records(&alice()).unwrap_err(),
        S4Error::AccessDenied
    );
}

#[test]
fn partitions_are_versioned_named_objects() {
    let d = drive();
    let ctx = alice();
    let root1 = d.op_create(&ctx, None).unwrap();
    let root2 = d.op_create(&ctx, None).unwrap();
    d.op_pcreate(&ctx, "export", root1).unwrap();
    let t1 = d.now();
    tick(&d);
    d.op_pdelete(&ctx, "export").unwrap();
    d.op_pcreate(&ctx, "export", root2).unwrap();
    d.op_sync(&ctx).unwrap();

    assert_eq!(d.op_pmount(&ctx, "export", None).unwrap(), root2);
    // Time-based PMount sees the old association (Table 1).
    assert_eq!(d.op_pmount(&ctx, "export", Some(t1)).unwrap(), root1);
    assert_eq!(d.op_plist(&ctx, None).unwrap().len(), 1);
    // Duplicate names rejected.
    assert_eq!(
        d.op_pcreate(&ctx, "export", root1).unwrap_err(),
        S4Error::PartitionExists
    );
    assert_eq!(
        d.op_pdelete(&ctx, "nope").unwrap_err(),
        S4Error::NoSuchPartition
    );
}

#[test]
fn clean_remount_preserves_everything() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(5));
    let d = S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock).unwrap();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"v1").unwrap();
    let t1 = d.now();
    d.clock().advance(SimDuration::from_millis(10));
    d.op_write(&ctx, oid, 0, b"v2").unwrap();
    d.op_pcreate(&ctx, "root", oid).unwrap();
    let dev = d.unmount().unwrap();

    let clock2 = SimClock::new();
    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), clock2).unwrap();
    assert_eq!(d2.op_read(&ctx, oid, 0, 10, None).unwrap(), b"v2");
    assert_eq!(d2.op_read(&ctx, oid, 0, 10, Some(t1)).unwrap(), b"v1");
    assert_eq!(d2.op_pmount(&ctx, "root", None).unwrap(), oid);
    // The clock resumed past the anchor time.
    assert!(d2.now() >= t1);
}

#[test]
fn crash_recovery_replays_synced_state() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(5));
    let d = S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock).unwrap();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"synced-data").unwrap();
    let t1 = d.now();
    d.clock().advance(SimDuration::from_millis(10));
    d.op_write(&ctx, oid, 0, b"synced-two!").unwrap();
    d.op_sync(&ctx).unwrap();
    // NOT synced: lost by the crash.
    d.op_write(&ctx, oid, 0, b"lost").unwrap();

    // Crash: power loss — all drive memory vanishes.
    let dev = d.crash();

    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap();
    assert_eq!(d2.op_read(&ctx, oid, 0, 20, None).unwrap(), b"synced-two!");
    assert_eq!(
        d2.op_read(&ctx, oid, 0, 20, Some(t1)).unwrap(),
        b"synced-data"
    );
    // New writes after recovery work and version history continues.
    d2.clock().advance(SimDuration::from_secs(10));
    d2.op_write(&ctx, oid, 0, b"post-crash!").unwrap();
    d2.op_sync(&ctx).unwrap();
    assert_eq!(d2.op_read(&ctx, oid, 0, 20, None).unwrap(), b"post-crash!");
}

#[test]
fn expiry_reclaims_old_versions_but_keeps_current() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"ancient").unwrap();
    let t_v1 = d.now();
    tick(&d);
    // v1 is *deprecated* here; the window counts from deprecation (§3.3:
    // "a deprecated object remains in the history pool" for the window).
    d.op_write(&ctx, oid, 0, b"middle!").unwrap();
    let t_v2 = d.now();
    d.op_sync(&ctx).unwrap();

    // Move past the detection window (1 hour in the test config).
    d.clock().advance(SimDuration::from_secs(7200));
    d.op_write(&ctx, oid, 0, b"current").unwrap();
    d.op_sync(&ctx).unwrap();

    let released = d.expire_versions().unwrap();
    assert!(released > 0, "old version blocks should be released");

    // Current data intact.
    assert_eq!(d.op_read(&ctx, oid, 0, 10, None).unwrap(), b"current");
    // v1's validity ended at t_v2, over a window ago: reclaimed.
    assert!(matches!(
        d.op_read(&ctx, oid, 0, 10, Some(t_v1)),
        Err(S4Error::VersionUnavailable) | Err(S4Error::NoSuchObject)
    ));
    // v2 was deprecated only "now": still guaranteed recoverable.
    assert_eq!(d.op_read(&ctx, oid, 0, 10, Some(t_v2)).unwrap(), b"middle!");
}

#[test]
fn expired_deleted_objects_vanish_entirely() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"temp").unwrap();
    d.op_delete(&ctx, oid).unwrap();
    d.op_sync(&ctx).unwrap();
    d.clock().advance(SimDuration::from_secs(7200));
    d.expire_versions().unwrap();
    assert_eq!(
        d.op_read(&ctx, oid, 0, 10, None).unwrap_err(),
        S4Error::NoSuchObject
    );
    assert_eq!(
        d.op_getattr(&ctx, oid, Some(SimTime::from_secs(1)))
            .unwrap_err(),
        S4Error::NoSuchObject
    );
}

#[test]
fn cleaner_reclaims_space_and_preserves_data() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    // Churn: many overwrites fill segments with dead-after-window blocks.
    for round in 0..30u32 {
        let payload = vec![round as u8; 8192];
        d.op_write(&ctx, oid, 0, &payload).unwrap();
        d.op_sync(&ctx).unwrap();
    }
    d.clock().advance(SimDuration::from_secs(7200));
    // One fresh write so current data is newer than the window.
    d.op_write(&ctx, oid, 0, &[0xAB; 8192]).unwrap();
    d.op_sync(&ctx).unwrap();

    let free_before = d.free_segments();
    d.clean().unwrap();
    d.force_anchor().unwrap(); // promotes pending-free
    assert!(
        d.free_segments() > free_before,
        "cleaning should free segments ({} -> {})",
        free_before,
        d.free_segments()
    );
    let data = d.op_read(&ctx, oid, 0, 8192, None).unwrap();
    assert!(data.iter().all(|&b| b == 0xAB));
}

#[test]
fn flusho_removes_middle_versions_only() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"version-1").unwrap();
    let t1 = d.now();
    d.clock().advance(SimDuration::from_secs(10));
    let flush_from = d.now();
    d.op_write(&ctx, oid, 0, b"v2-secret").unwrap();
    let t2 = d.now();
    d.clock().advance(SimDuration::from_secs(10));
    let flush_to = d.now();
    d.clock().advance(SimDuration::from_secs(10));
    d.op_write(&ctx, oid, 0, b"version-3").unwrap();
    let t3 = d.now();
    d.op_sync(&ctx).unwrap();

    // Non-admin cannot flush.
    assert_eq!(
        d.op_flusho(&ctx, oid, flush_from, flush_to).unwrap_err(),
        S4Error::AccessDenied
    );
    d.op_flusho(&admin(), oid, flush_from, flush_to).unwrap();

    // v2 is gone; reading at t2 now yields v1 (the version that "was
    // current" once v2 is expunged).
    assert_eq!(
        d.op_read(&admin(), oid, 0, 20, Some(t2)).unwrap(),
        b"version-1"
    );
    assert_eq!(
        d.op_read(&admin(), oid, 0, 20, Some(t1)).unwrap(),
        b"version-1"
    );
    assert_eq!(
        d.op_read(&admin(), oid, 0, 20, Some(t3)).unwrap(),
        b"version-3"
    );
    assert_eq!(d.op_read(&ctx, oid, 0, 20, None).unwrap(), b"version-3");
}

#[test]
fn object_cache_eviction_round_trips_objects() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let mut config = DriveConfig::small_test();
    config.object_cache_entries = 4;
    let d = S4Drive::format(MemDisk::new(400_000), config, clock).unwrap();
    let ctx = alice();
    let mut oids = Vec::new();
    for i in 0..20u32 {
        let oid = d.op_create(&ctx, None).unwrap();
        d.op_write(&ctx, oid, 0, format!("object-{i}").as_bytes())
            .unwrap();
        oids.push(oid);
        d.op_sync(&ctx).unwrap();
    }
    // All objects remain readable after eviction cycles.
    for (i, oid) in oids.iter().enumerate() {
        let data = d.op_read(&ctx, *oid, 0, 100, None).unwrap();
        assert_eq!(data, format!("object-{i}").as_bytes());
    }
    assert!(
        d.stats().snapshot().checkpoints > 0,
        "evictions checkpointed"
    );
}

#[test]
fn set_window_is_admin_only_and_effective() {
    let d = drive();
    assert_eq!(
        d.op_set_window(&alice(), SimDuration::from_secs(60))
            .unwrap_err(),
        S4Error::AccessDenied
    );
    d.op_set_window(&admin(), SimDuration::from_secs(60))
        .unwrap();
    assert_eq!(d.detection_window(), SimDuration::from_secs(60));

    // With a 60s window, a version deprecated two minutes ago expires.
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    d.op_write(&ctx, oid, 0, b"old").unwrap();
    let t = d.now();
    d.op_sync(&ctx).unwrap();
    d.clock().advance(SimDuration::from_secs(120));
    d.op_write(&ctx, oid, 0, b"new").unwrap();
    d.op_sync(&ctx).unwrap();
    // Deprecation happened just now; wait out the window before expiry.
    d.clock().advance(SimDuration::from_secs(120));
    d.expire_versions().unwrap();
    assert!(d.op_read(&admin(), oid, 0, 10, Some(t)).is_err());
}

#[test]
fn reserved_objects_are_protected() {
    let d = drive();
    let ctx = alice();
    for oid in [s4_core::AUDIT_OBJECT, s4_core::PARTITION_OBJECT] {
        assert_eq!(
            d.op_write(&ctx, oid, 0, b"tamper").unwrap_err(),
            S4Error::AccessDenied
        );
        assert_eq!(d.op_delete(&ctx, oid).unwrap_err(), S4Error::AccessDenied);
    }
    // Even the admin cannot write the audit object through the front
    // door: "cannot be modified except by the drive itself".
    assert_eq!(
        d.op_write(&admin(), s4_core::AUDIT_OBJECT, 0, b"x")
            .unwrap_err(),
        S4Error::AccessDenied
    );
}

#[test]
fn version_counter_tracks_mutations() {
    let d = drive();
    let ctx = alice();
    let oid = d.op_create(&ctx, None).unwrap();
    let before = d.stats().snapshot().versions_created;
    d.op_write(&ctx, oid, 0, b"a").unwrap();
    d.op_setattr(&ctx, oid, vec![1]).unwrap();
    d.op_truncate(&ctx, oid, 0).unwrap();
    let after = d.stats().snapshot().versions_created;
    assert_eq!(after - before, 3);
}
