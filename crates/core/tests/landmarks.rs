//! Landmark versioning (§6): pinned versions survive detection-window
//! expiry, differencing, and remounts.

use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, S4Error, UserId};
use s4_simdisk::MemDisk;

fn drive() -> S4Drive<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock,
    )
    .unwrap()
}

fn ctx() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

#[test]
fn landmark_survives_window_expiry() {
    let d = drive();
    let oid = d.op_create(&ctx(), None).unwrap();
    d.op_write(&ctx(), oid, 0, b"milestone release v1.0")
        .unwrap();
    let v1 = d.now();
    d.clock().advance(SimDuration::from_secs(60));
    d.op_write(&ctx(), oid, 0, b"throwaway work-in-prog")
        .unwrap();
    let v2 = d.now();
    d.clock().advance(SimDuration::from_secs(60));
    // v2 is deprecated *here*, inside the window being aged out below.
    d.op_write(&ctx(), oid, 0, b"also aging throwaway..")
        .unwrap();
    d.op_sync(&ctx()).unwrap();

    // Pin v1, then age everything past the (1 hour) window.
    d.op_mark_landmark(&ctx(), oid, v1).unwrap();
    d.clock().advance(SimDuration::from_secs(7200));
    d.op_write(&ctx(), oid, 0, b"current state of file.")
        .unwrap();
    d.op_sync(&ctx()).unwrap();
    d.expire_versions().unwrap();

    // The unpinned middle version's own content is gone; reads in the
    // aged-out era resolve to the nearest earlier landmark (Elephant's
    // "landmarks are what remain of an era" semantics).
    assert_eq!(
        d.op_read(&ctx(), oid, 0, 64, Some(v2)).unwrap(),
        b"milestone release v1.0"
    );
    assert_eq!(
        d.op_read(&ctx(), oid, 0, 64, Some(v1)).unwrap(),
        b"milestone release v1.0"
    );
    let lms = d.landmarks(&ctx(), oid).unwrap();
    assert_eq!(lms.len(), 1);
    assert_eq!(lms[0].1, 22);
}

#[test]
fn landmark_survives_compaction_and_remount() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let oid = d.op_create(&ctx(), None).unwrap();
    let text = "landmarked content line\n".repeat(100);
    d.op_write(&ctx(), oid, 0, text.as_bytes()).unwrap();
    let v1 = d.now();
    clock.advance(SimDuration::from_secs(10));
    let mut v = text.clone().into_bytes();
    v[0..7].copy_from_slice(b"EDITED!");
    d.op_write(&ctx(), oid, 0, &v).unwrap();
    d.op_sync(&ctx()).unwrap();

    d.op_mark_landmark(&ctx(), oid, v1).unwrap();
    d.compact_history().unwrap();

    let dev = d.unmount().unwrap();
    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap();
    assert_eq!(
        d2.op_read(&ctx(), oid, 0, 1 << 16, Some(v1)).unwrap(),
        text.as_bytes()
    );
    assert_eq!(d2.landmarks(&ctx(), oid).unwrap().len(), 1);
}

#[test]
fn unmark_releases_the_pin() {
    let d = drive();
    let oid = d.op_create(&ctx(), None).unwrap();
    d.op_write(&ctx(), oid, 0, b"pin me").unwrap();
    let v1 = d.now();
    d.clock().advance(SimDuration::from_secs(60));
    d.op_write(&ctx(), oid, 0, b"newer!").unwrap();
    d.op_sync(&ctx()).unwrap();
    d.op_mark_landmark(&ctx(), oid, v1).unwrap();
    let lm_stamp = d.landmarks(&ctx(), oid).unwrap()[0].0;

    // Age out and expire: landmark holds.
    d.clock().advance(SimDuration::from_secs(7200));
    d.op_write(&ctx(), oid, 0, b"latest").unwrap();
    d.op_sync(&ctx()).unwrap();
    d.expire_versions().unwrap();
    assert!(d.op_read(&ctx(), oid, 0, 16, Some(v1)).is_ok());

    // Unpin: the version becomes unavailable.
    d.op_unmark_landmark(&ctx(), oid, lm_stamp).unwrap();
    assert!(matches!(
        d.op_read(&ctx(), oid, 0, 16, Some(v1)),
        Err(S4Error::VersionUnavailable) | Err(S4Error::NoSuchObject)
    ));
    assert!(d.landmarks(&ctx(), oid).unwrap().is_empty());
}

#[test]
fn landmarks_require_owner_permission() {
    let d = drive();
    let oid = d.op_create(&ctx(), None).unwrap();
    d.op_write(&ctx(), oid, 0, b"x").unwrap();
    let t = d.now();
    let stranger = RequestContext::user(UserId(9), ClientId(9));
    assert_eq!(
        d.op_mark_landmark(&stranger, oid, t).unwrap_err(),
        S4Error::AccessDenied
    );
    // The drive administrator can pin anything.
    let admin = RequestContext::admin(ClientId(0), 42);
    d.op_mark_landmark(&admin, oid, t).unwrap();
}

#[test]
fn landmarked_deleted_object_survives_expiry_anchor_and_remount() {
    // The hard path: a deleted object whose whole journal history expires
    // while a landmark pins one version — it must still be anchorable
    // (checkpointed lazily) and recoverable after remount.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let oid = d.op_create(&ctx(), None).unwrap();
    d.op_write(&ctx(), oid, 0, b"pinned forever").unwrap();
    let v1 = d.now();
    d.op_mark_landmark(&ctx(), oid, v1).unwrap();
    clock.advance(SimDuration::from_secs(60));
    d.op_delete(&ctx(), oid).unwrap();
    d.op_sync(&ctx()).unwrap();
    clock.advance(SimDuration::from_secs(100_000));
    d.expire_versions().unwrap();

    let dev = d.unmount().unwrap();
    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap();
    assert_eq!(
        d2.op_read(&ctx(), oid, 0, 64, Some(v1)).unwrap(),
        b"pinned forever"
    );
    assert_eq!(d2.landmarks(&ctx(), oid).unwrap().len(), 1);
}

#[test]
fn deleted_object_with_landmark_is_not_dropped() {
    let d = drive();
    let oid = d.op_create(&ctx(), None).unwrap();
    d.op_write(&ctx(), oid, 0, b"keep forever").unwrap();
    let v1 = d.now();
    d.op_mark_landmark(&ctx(), oid, v1).unwrap();
    d.clock().advance(SimDuration::from_secs(60));
    d.op_delete(&ctx(), oid).unwrap();
    d.op_sync(&ctx()).unwrap();

    // Age far past the window; the object would normally vanish.
    d.clock().advance(SimDuration::from_secs(100_000));
    d.expire_versions().unwrap();
    assert_eq!(
        d.op_read(&ctx(), oid, 0, 64, Some(v1)).unwrap(),
        b"keep forever"
    );
}
