//! Baseline NFS servers for the paper's four-way comparison (§5.1.1).
//!
//! The paper compares S4 against a FreeBSD 4.0 NFS server (FFS) and a
//! RedHat 6.1 Linux NFS server (ext2, mounted synchronously). What makes
//! these baselines interesting is their *update-in-place* I/O pattern:
//! data and metadata live at fixed disk addresses, so NFSv2's
//! commit-before-reply semantics turn every small operation into several
//! scattered synchronous writes — exactly the pattern the log-structured
//! S4 drive batches away.
//!
//! [`FfsServer`] models FreeBSD's behavior (every metadata update written
//! synchronously); [`Ext2SyncServer`] models Linux's `sync` mount,
//! including the paper's observed anomaly ("the superior performance of
//! the Linux NFS server in the configure stage is due to a much lower
//! number of write I/Os ... apparently due to a flaw in the synchronous
//! mount option"): inode updates are batched instead of written per
//! operation.
//!
//! File *data* genuinely lives on the wrapped block device at allocated
//! addresses; directory and inode structures are tracked in memory while
//! their I/O is charged through explicit sector writes at their fixed
//! locations, so service times through a timed device reflect a realistic
//! FFS/ext2 access pattern (seeks between inode region, directory blocks,
//! and file data).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod uip;

pub use uip::{ffs_server, Ext2SyncServer, FfsServer, UipConfig, UipServer};
