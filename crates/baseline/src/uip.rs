//! The shared update-in-place file server core.

use std::collections::HashMap;

use s4_clock::sync::Mutex;

use s4_clock::{CpuModel, SimClock, SimTime};
use s4_fs::{FileAttr, FileKind, FileServer, FsError, FsResult, Handle};
use s4_simdisk::{BlockDev, SECTOR_SIZE};

const BLOCK_SIZE: usize = 4096;
const SECTORS_PER_BLOCK: u64 = (BLOCK_SIZE / SECTOR_SIZE) as u64;

/// Configuration of an update-in-place server.
#[derive(Clone, Copy, Debug)]
pub struct UipConfig {
    /// Sectors reserved for the inode region at the front of the device.
    pub inode_region_sectors: u64,
    /// If true, every inode update is written synchronously (FreeBSD FFS
    /// behavior); if false, inode writes are batched and flushed every
    /// `meta_batch` operations (the Linux ext2 "sync-mount flaw").
    pub sync_inodes: bool,
    /// Dirty-inode flush interval when `sync_inodes` is false.
    pub meta_batch: u32,
    /// Server block cache capacity in blocks (the paper's servers could
    /// grow their caches to fill 512 MB).
    pub cache_blocks: usize,
    /// Server CPU cost model.
    pub cpu: CpuModel,
    /// Cylinder-group size in blocks: new files are allocated near their
    /// directory's group, as FFS does.
    pub group_blocks: u64,
}

impl Default for UipConfig {
    fn default() -> Self {
        UipConfig {
            inode_region_sectors: 8192, // 8K inodes, 1 sector each
            sync_inodes: true,
            meta_batch: 32,
            cache_blocks: 128 * 1024, // 512 MB
            cpu: CpuModel::pentium3_600(),
            group_blocks: 2048, // 8 MB groups
        }
    }
}

struct Node {
    kind: FileKind,
    size: u64,
    mtime: SimTime,
    mode: u16,
    /// Allocated data blocks, by logical index.
    blocks: Vec<Option<u64>>,
    /// Directory contents (for `FileKind::Dir`).
    entries: Vec<(String, Handle, FileKind)>,
    /// Block that holds this directory's entry table.
    dir_block: Option<u64>,
    /// Symlink target.
    target: String,
}

struct State {
    nodes: HashMap<Handle, Node>,
    next_handle: Handle,
    /// Data-block allocation bitmap.
    bitmap: Vec<bool>,
    /// Rotating allocation cursor per group.
    dirty_inodes: Vec<Handle>,
    ops_since_meta_flush: u32,
    cache: lru::Lru,
}

mod lru {
    //! Minimal block-number LRU set for the server cache.
    use std::collections::{BTreeMap, HashMap};

    pub(super) struct Lru {
        cap: usize,
        map: HashMap<u64, u64>,
        order: BTreeMap<u64, u64>,
        gen: u64,
    }

    impl Lru {
        pub fn new(cap: usize) -> Self {
            Lru {
                cap,
                map: HashMap::new(),
                order: BTreeMap::new(),
                gen: 0,
            }
        }

        /// Returns true if `block` was cached; refreshes/inserts it either
        /// way.
        pub fn touch(&mut self, block: u64) -> bool {
            self.gen += 1;
            let hit = if let Some(old) = self.map.insert(block, self.gen) {
                self.order.remove(&old);
                true
            } else {
                false
            };
            self.order.insert(self.gen, block);
            while self.map.len() > self.cap.max(1) {
                let (&g, &b) = self.order.iter().next().expect("order tracks map");
                self.order.remove(&g);
                self.map.remove(&b);
            }
            hit
        }

        pub fn evict(&mut self, block: u64) {
            if let Some(g) = self.map.remove(&block) {
                self.order.remove(&g);
            }
        }
    }
}

/// The update-in-place server over a block device.
pub struct UipServer<D: BlockDev> {
    dev: D,
    clock: SimClock,
    config: UipConfig,
    data_start: u64,
    total_blocks: u64,
    state: Mutex<State>,
    root: Handle,
}

impl<D: BlockDev> UipServer<D> {
    /// Formats `dev` with an empty file system.
    pub fn format(dev: D, config: UipConfig, clock: SimClock) -> FsResult<Self> {
        let data_start = config.inode_region_sectors;
        let total_blocks = dev.num_sectors().saturating_sub(data_start) / SECTORS_PER_BLOCK;
        if total_blocks < 16 {
            return Err(FsError::Storage("device too small".into()));
        }
        let mut state = State {
            nodes: HashMap::new(),
            next_handle: 1,
            bitmap: vec![false; total_blocks as usize],
            dirty_inodes: Vec::new(),
            ops_since_meta_flush: 0,
            cache: lru::Lru::new(config.cache_blocks),
        };
        let root = state.next_handle;
        state.next_handle += 1;
        state.nodes.insert(
            root,
            Node {
                kind: FileKind::Dir,
                size: 0,
                mtime: clock.now(),
                mode: 0o755,
                blocks: Vec::new(),
                entries: Vec::new(),
                dir_block: None,
                target: String::new(),
            },
        );
        Ok(UipServer {
            dev,
            clock,
            config,
            data_start,
            total_blocks,
            state: Mutex::new(state),
            root,
        })
    }

    /// The underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    fn sector_of_block(&self, block: u64) -> u64 {
        self.data_start + block * SECTORS_PER_BLOCK
    }

    fn sector_of_inode(&self, h: Handle) -> u64 {
        h % self.config.inode_region_sectors
    }

    /// Allocates one data block near `hint`.
    fn alloc_block(&self, state: &mut State, hint: u64) -> FsResult<u64> {
        let n = self.total_blocks as usize;
        let start = (hint % self.total_blocks) as usize;
        for i in 0..n {
            let idx = (start + i) % n;
            if !state.bitmap[idx] {
                state.bitmap[idx] = true;
                return Ok(idx as u64);
            }
        }
        Err(FsError::Storage("disk full".into()))
    }

    fn free_block(&self, state: &mut State, block: u64) {
        state.bitmap[block as usize] = false;
        state.cache.evict(block);
    }

    /// Group-affine allocation hint for a file (FFS places a file near
    /// its inode's cylinder group).
    fn hint_for(&self, h: Handle) -> u64 {
        (h * self.config.group_blocks) % self.total_blocks.max(1)
    }

    /// Charges a synchronous inode write (or defers it under the ext2
    /// batching model).
    fn write_inode(&self, state: &mut State, h: Handle) {
        if self.config.sync_inodes {
            let buf = vec![0u8; SECTOR_SIZE];
            let _ = self.dev.write(self.sector_of_inode(h), &buf);
        } else {
            if !state.dirty_inodes.contains(&h) {
                state.dirty_inodes.push(h);
            }
            state.ops_since_meta_flush += 1;
            if state.ops_since_meta_flush >= self.config.meta_batch {
                let dirty = std::mem::take(&mut state.dirty_inodes);
                for h in dirty {
                    let buf = vec![0u8; SECTOR_SIZE];
                    let _ = self.dev.write(self.sector_of_inode(h), &buf);
                }
                state.ops_since_meta_flush = 0;
            }
        }
    }

    /// Charges a synchronous directory-block write, allocating the block
    /// on first use.
    fn write_dir_block(&self, state: &mut State, dir: Handle) -> FsResult<()> {
        let hint = self.hint_for(dir);
        let block = match state.nodes.get(&dir).and_then(|n| n.dir_block) {
            Some(b) => b,
            None => {
                let b = self.alloc_block(state, hint)?;
                state
                    .nodes
                    .get_mut(&dir)
                    .expect("caller validated dir")
                    .dir_block = Some(b);
                b
            }
        };
        let buf = vec![0u8; BLOCK_SIZE];
        self.dev
            .write(self.sector_of_block(block), &buf)
            .map_err(|e| FsError::Storage(e.to_string()))?;
        state.cache.touch(block);
        Ok(())
    }

    fn node<'a>(&self, state: &'a State, h: Handle) -> FsResult<&'a Node> {
        state.nodes.get(&h).ok_or(FsError::NotFound)
    }

    fn charge_cpu(&self, bytes: usize) {
        self.clock.advance(self.config.cpu.op_cost(bytes));
    }

    fn create_node(
        &self,
        dir: Handle,
        name: &str,
        kind: FileKind,
        mode: u16,
        target: &str,
    ) -> FsResult<Handle> {
        if name.is_empty() || name.len() > 255 || name.contains('/') {
            return Err(FsError::Invalid("file name"));
        }
        self.charge_cpu(0);
        let mut state = self.state.lock();
        {
            let d = self.node(&state, dir)?;
            if d.kind != FileKind::Dir {
                return Err(FsError::NotADirectory);
            }
            if d.entries.iter().any(|(n, _, _)| n == name) {
                return Err(FsError::Exists);
            }
        }
        let h = state.next_handle;
        state.next_handle += 1;
        state.nodes.insert(
            h,
            Node {
                kind,
                size: target.len() as u64,
                mtime: self.clock.now(),
                mode,
                blocks: Vec::new(),
                entries: Vec::new(),
                dir_block: None,
                target: target.to_string(),
            },
        );
        let now = self.clock.now();
        {
            let d = state.nodes.get_mut(&dir).expect("validated above");
            d.entries.push((name.to_string(), h, kind));
            d.mtime = now;
        }
        // NFSv2 + FFS: new inode, directory block, and directory inode all
        // written synchronously.
        self.write_inode(&mut state, h);
        self.write_dir_block(&mut state, dir)?;
        self.write_inode(&mut state, dir);
        Ok(h)
    }

    fn remove_entry(&self, dir: Handle, name: &str, want_dir: bool) -> FsResult<()> {
        self.charge_cpu(0);
        let mut state = self.state.lock();
        let idx = {
            let d = self.node(&state, dir)?;
            if d.kind != FileKind::Dir {
                return Err(FsError::NotADirectory);
            }
            d.entries
                .iter()
                .position(|(n, _, _)| n == name)
                .ok_or(FsError::NotFound)?
        };
        let (_, h, kind) = state.nodes.get(&dir).expect("validated").entries[idx].clone();
        match (want_dir, kind) {
            (true, FileKind::Dir) => {
                if !self.node(&state, h)?.entries.is_empty() {
                    return Err(FsError::NotEmpty);
                }
            }
            (false, FileKind::Dir) => return Err(FsError::Invalid("is a directory")),
            (true, _) => return Err(FsError::NotADirectory),
            (false, _) => {}
        }
        state
            .nodes
            .get_mut(&dir)
            .expect("validated")
            .entries
            .remove(idx);
        // Free the victim's blocks.
        if let Some(node) = state.nodes.remove(&h) {
            for b in node.blocks.into_iter().flatten() {
                self.free_block(&mut state, b);
            }
            if let Some(b) = node.dir_block {
                self.free_block(&mut state, b);
            }
        }
        let now = self.clock.now();
        state.nodes.get_mut(&dir).expect("validated").mtime = now;
        self.write_dir_block(&mut state, dir)?;
        self.write_inode(&mut state, dir);
        self.write_inode(&mut state, h); // deallocated inode
        Ok(())
    }
}

impl<D: BlockDev> FileServer for UipServer<D> {
    fn root(&self) -> Handle {
        self.root
    }

    fn lookup(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.charge_cpu(0);
        let state = self.state.lock();
        let d = self.node(&state, dir)?;
        if d.kind != FileKind::Dir {
            return Err(FsError::NotADirectory);
        }
        d.entries
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, h, _)| *h)
            .ok_or(FsError::NotFound)
    }

    fn create(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.create_node(dir, name, FileKind::File, 0o644, "")
    }

    fn mkdir(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.create_node(dir, name, FileKind::Dir, 0o755, "")
    }

    fn symlink(&self, dir: Handle, name: &str, target: &str) -> FsResult<Handle> {
        self.create_node(dir, name, FileKind::Symlink, 0o777, target)
    }

    fn readlink(&self, file: Handle) -> FsResult<String> {
        let state = self.state.lock();
        let n = self.node(&state, file)?;
        if n.kind != FileKind::Symlink {
            return Err(FsError::Invalid("not a symlink"));
        }
        Ok(n.target.clone())
    }

    fn read(&self, file: Handle, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.charge_cpu(len as usize);
        let mut state = self.state.lock();
        let (size, blocks): (u64, Vec<Option<u64>>) = {
            let n = self.node(&state, file)?;
            (n.size, n.blocks.clone())
        };
        if offset >= size {
            return Ok(Vec::new());
        }
        let len = len.min(size - offset) as usize;
        let mut out = vec![0u8; len];
        let bs = BLOCK_SIZE as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        for lbn in first..=last {
            let Some(Some(block)) = blocks.get(lbn as usize) else {
                continue;
            };
            // Cache hit: no disk I/O. Miss: one block read.
            let mut buf = vec![0u8; BLOCK_SIZE];
            if state.cache.touch(*block) {
                // Served from the server's memory: data must still be
                // produced; re-read without charging is impossible with a
                // single backing store, so read through the *untimed*
                // path is unavailable — instead we keep a copy in the
                // cache-hit case by reading the device's raw bytes.
                // The device read below is skipped for hits.
                buf = read_block_uncharged(&self.dev, self.sector_of_block(*block));
            } else {
                self.dev
                    .read(self.sector_of_block(*block), &mut buf)
                    .map_err(|e| FsError::Storage(e.to_string()))?;
            }
            let block_start = lbn * bs;
            let copy_from = offset.max(block_start);
            let copy_to = (offset + len as u64).min(block_start + bs);
            out[(copy_from - offset) as usize..(copy_to - offset) as usize].copy_from_slice(
                &buf[(copy_from - block_start) as usize..(copy_to - block_start) as usize],
            );
        }
        Ok(out)
    }

    fn write(&self, file: Handle, offset: u64, data: &[u8]) -> FsResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.charge_cpu(data.len());
        let mut state = self.state.lock();
        if self.node(&state, file)?.kind == FileKind::Dir {
            return Err(FsError::Invalid("is a directory"));
        }
        let hint = self.hint_for(file);
        let bs = BLOCK_SIZE as u64;
        let first = offset / bs;
        let last = (offset + data.len() as u64 - 1) / bs;
        for lbn in first..=last {
            // Ensure allocation.
            let need_len = (lbn as usize) + 1;
            let existing = {
                let n = self.node(&state, file)?;
                n.blocks.get(lbn as usize).copied().flatten()
            };
            let block = match existing {
                Some(b) => b,
                None => {
                    let b = self.alloc_block(&mut state, hint + lbn)?;
                    let n = state.nodes.get_mut(&file).expect("validated");
                    if n.blocks.len() < need_len {
                        n.blocks.resize(need_len, None);
                    }
                    n.blocks[lbn as usize] = Some(b);
                    b
                }
            };
            // Build block contents (read-modify-write for partials).
            let block_start = lbn * bs;
            let copy_from = offset.max(block_start);
            let copy_to = (offset + data.len() as u64).min(block_start + bs);
            let full = copy_to - copy_from == bs;
            let mut buf = if full || existing.is_none() {
                vec![0u8; BLOCK_SIZE]
            } else {
                read_block_uncharged(&self.dev, self.sector_of_block(block))
            };
            buf[(copy_from - block_start) as usize..(copy_to - block_start) as usize]
                .copy_from_slice(&data[(copy_from - offset) as usize..(copy_to - offset) as usize]);
            // Update-in-place, synchronous (NFSv2).
            self.dev
                .write(self.sector_of_block(block), &buf)
                .map_err(|e| FsError::Storage(e.to_string()))?;
            state.cache.touch(block);
        }
        let now = self.clock.now();
        {
            let n = state.nodes.get_mut(&file).expect("validated");
            n.size = n.size.max(offset + data.len() as u64);
            n.mtime = now;
        }
        self.write_inode(&mut state, file);
        Ok(())
    }

    fn getattr(&self, file: Handle) -> FsResult<FileAttr> {
        let state = self.state.lock();
        let n = self.node(&state, file)?;
        Ok(FileAttr {
            kind: n.kind,
            size: n.size,
            mtime: n.mtime,
            mode: n.mode,
        })
    }

    fn truncate(&self, file: Handle, size: u64) -> FsResult<()> {
        self.charge_cpu(0);
        let mut state = self.state.lock();
        let keep = size.div_ceil(BLOCK_SIZE as u64) as usize;
        let freed: Vec<u64> = {
            let n = state.nodes.get_mut(&file).ok_or(FsError::NotFound)?;
            let freed = n
                .blocks
                .drain(keep.min(n.blocks.len())..)
                .flatten()
                .collect();
            n.size = size;
            n.mtime = self.clock.now();
            freed
        };
        for b in freed {
            self.free_block(&mut state, b);
        }
        self.write_inode(&mut state, file);
        Ok(())
    }

    fn remove(&self, dir: Handle, name: &str) -> FsResult<()> {
        self.remove_entry(dir, name, false)
    }

    fn rmdir(&self, dir: Handle, name: &str) -> FsResult<()> {
        self.remove_entry(dir, name, true)
    }

    fn rename(
        &self,
        from_dir: Handle,
        from_name: &str,
        to_dir: Handle,
        to_name: &str,
    ) -> FsResult<()> {
        self.charge_cpu(0);
        let mut state = self.state.lock();
        let idx = {
            let d = self.node(&state, from_dir)?;
            d.entries
                .iter()
                .position(|(n, _, _)| n == from_name)
                .ok_or(FsError::NotFound)?
        };
        let entry = state
            .nodes
            .get_mut(&from_dir)
            .expect("validated")
            .entries
            .remove(idx);
        // Overwrite an existing target.
        let overwritten: Option<Handle> = {
            let d = state.nodes.get_mut(&to_dir).ok_or(FsError::NotFound)?;
            let old = d
                .entries
                .iter()
                .position(|(n, _, _)| n == to_name)
                .map(|i| d.entries.remove(i).1);
            d.entries.push((to_name.to_string(), entry.1, entry.2));
            old
        };
        if let Some(h) = overwritten {
            if let Some(node) = state.nodes.remove(&h) {
                for b in node.blocks.into_iter().flatten() {
                    self.free_block(&mut state, b);
                }
            }
        }
        self.write_dir_block(&mut state, from_dir)?;
        self.write_inode(&mut state, from_dir);
        if to_dir != from_dir {
            self.write_dir_block(&mut state, to_dir)?;
            self.write_inode(&mut state, to_dir);
        }
        Ok(())
    }

    fn readdir(&self, dir: Handle) -> FsResult<Vec<(String, Handle, FileKind)>> {
        let state = self.state.lock();
        let d = self.node(&state, dir)?;
        if d.kind != FileKind::Dir {
            return Err(FsError::NotADirectory);
        }
        Ok(d.entries.clone())
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }
}

/// Reads a block without charging simulated time (server cache hits and
/// read-modify-write merges of bytes the server already holds in memory):
/// delegates to [`BlockDev::peek`], which timed wrappers route past their
/// cost model.
fn read_block_uncharged<D: BlockDev>(dev: &D, sector: u64) -> Vec<u8> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    let _ = dev.peek(sector, &mut buf);
    buf
}

/// FreeBSD-style server: fully synchronous metadata.
pub type FfsServer<D> = UipServer<D>;

/// Builds a FreeBSD-FFS-like server.
pub fn ffs_server<D: BlockDev>(dev: D, clock: SimClock) -> FsResult<FfsServer<D>> {
    UipServer::format(
        dev,
        UipConfig {
            sync_inodes: true,
            ..UipConfig::default()
        },
        clock,
    )
}

/// Linux-ext2-sync-like server: batched inode writes (the paper's
/// "sync mount flaw").
pub struct Ext2SyncServer;

impl Ext2SyncServer {
    /// Builds an ext2-sync-like server.
    pub fn format<D: BlockDev>(dev: D, clock: SimClock) -> FsResult<UipServer<D>> {
        UipServer::format(
            dev,
            UipConfig {
                sync_inodes: false,
                ..UipConfig::default()
            },
            clock,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};

    fn server() -> UipServer<TimedDisk<MemDisk>> {
        let clock = SimClock::new();
        let dev = TimedDisk::new(
            MemDisk::new(400_000),
            DiskModelParams::cheetah_9gb_10k(),
            clock.clone(),
        );
        ffs_server(dev, clock).unwrap()
    }

    #[test]
    fn create_write_read() {
        let s = server();
        let root = s.root();
        let f = s.create(root, "a.txt").unwrap();
        s.write(f, 0, b"hello baseline").unwrap();
        assert_eq!(s.read(f, 0, 100).unwrap(), b"hello baseline");
        assert_eq!(s.read(f, 6, 8).unwrap(), b"baseline");
        let attr = s.getattr(f).unwrap();
        assert_eq!(attr.size, 14);
        assert_eq!(attr.kind, FileKind::File);
    }

    #[test]
    fn directories_and_links() {
        let s = server();
        let root = s.root();
        let d = s.mkdir(root, "sub").unwrap();
        let f = s.create(d, "x").unwrap();
        assert_eq!(s.lookup(d, "x").unwrap(), f);
        assert_eq!(s.resolve_path("sub/x").unwrap(), f);
        let l = s.symlink(root, "lnk", "sub/x").unwrap();
        assert_eq!(s.readlink(l).unwrap(), "sub/x");
        assert_eq!(s.readdir(root).unwrap().len(), 2);
        // rmdir refuses non-empty.
        assert_eq!(s.rmdir(root, "sub").unwrap_err(), FsError::NotEmpty);
        s.remove(d, "x").unwrap();
        s.rmdir(root, "sub").unwrap();
    }

    #[test]
    fn rename_with_overwrite() {
        let s = server();
        let root = s.root();
        let a = s.create(root, "a").unwrap();
        s.write(a, 0, b"AAA").unwrap();
        let b = s.create(root, "b").unwrap();
        s.write(b, 0, b"BBB").unwrap();
        s.rename(root, "a", root, "b").unwrap();
        let nb = s.lookup(root, "b").unwrap();
        assert_eq!(nb, a);
        assert_eq!(s.read(nb, 0, 10).unwrap(), b"AAA");
        assert!(s.lookup(root, "a").is_err());
        assert_eq!(s.readdir(root).unwrap().len(), 1);
    }

    #[test]
    fn truncate_frees_blocks_for_reuse() {
        let s = server();
        let root = s.root();
        let f = s.create(root, "big").unwrap();
        s.write(f, 0, &vec![7u8; 64 * 1024]).unwrap();
        s.truncate(f, 100).unwrap();
        assert_eq!(s.getattr(f).unwrap().size, 100);
        assert_eq!(s.read(f, 0, 4096).unwrap().len(), 100);
    }

    #[test]
    fn writes_cost_more_time_than_cached_reads() {
        let s = server();
        let root = s.root();
        let f = s.create(root, "f").unwrap();
        let t0 = s.now();
        s.write(f, 0, &vec![1u8; 8192]).unwrap();
        let t_write = s.now() - t0;
        let t1 = s.now();
        s.read(f, 0, 8192).unwrap(); // cache hit: no disk charge
        let t_read = s.now() - t1;
        assert!(t_write > t_read, "write {t_write:?} vs read {t_read:?}");
    }

    #[test]
    fn ffs_issues_more_write_ios_than_ext2_sync() {
        // The Figure 4 configure-phase anomaly: ext2-sync does fewer
        // writes.
        let run = |sync: bool| -> u64 {
            let clock = SimClock::new();
            let dev = TimedDisk::new(
                MemDisk::new(400_000),
                DiskModelParams::free(),
                clock.clone(),
            );
            let stats = dev.stats_handle();
            let s = UipServer::format(
                dev,
                UipConfig {
                    sync_inodes: sync,
                    ..UipConfig::default()
                },
                clock,
            )
            .unwrap();
            let root = s.root();
            for i in 0..100 {
                let f = s.create(root, &format!("f{i}")).unwrap();
                s.write(f, 0, b"small").unwrap();
            }
            stats.snapshot().writes
        };
        let ffs = run(true);
        let ext2 = run(false);
        assert!(
            ffs > ext2 + 50,
            "ffs {ffs} writes should exceed ext2-sync {ext2}"
        );
    }

    #[test]
    fn data_survives_on_the_device() {
        // The baselines genuinely store data at allocated addresses.
        let clock = SimClock::new();
        let s = ffs_server(MemDisk::new(400_000), clock).unwrap();
        let root = s.root();
        let f = s.create(root, "f").unwrap();
        s.write(f, 0, b"persisted-bytes").unwrap();
        // Scan the raw device for the contents.
        let dev = s.device();
        let mut found = false;
        for sector in (0..dev.num_sectors()).step_by(8) {
            let mut buf = vec![0u8; SECTOR_SIZE];
            dev.read(sector, &mut buf).unwrap();
            if buf.windows(15).any(|w| w == b"persisted-bytes") {
                found = true;
                break;
            }
        }
        assert!(found);
    }
}
