//! Concurrent-client stress: ≥8 threaded clients hammer the framed-TCP
//! server — once over a lone drive, once over a 4-shard array — and the
//! audit stream recovered after unmount must be a serializable
//! interleaving of what the clients issued: every client's operations
//! appear in issue order (the drive executed them one at a time in
//! *some* global order), with no record lost and none duplicated.

use std::sync::Arc;

use s4_array::{ArrayConfig, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    AuditRecord, ClientId, DriveConfig, ObjectId, OpKind, Request, RequestContext, Response,
    S4Drive, UserId,
};
use s4_fs::{TcpServerHandle, TcpTransport, Transport};
use s4_simdisk::MemDisk;

const CLIENTS: u32 = 8;
const WRITES_PER_CLIENT: u64 = 40;

/// Per-connection handler threads exit asynchronously once their client
/// disconnects; wait them out before reclaiming sole ownership.
fn unwrap_arc<T>(mut arc: Arc<T>) -> T {
    for _ in 0..2000 {
        match Arc::try_unwrap(arc) {
            Ok(v) => return v,
            Err(a) => {
                arc = a;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    }
    panic!("server threads still hold the handler");
}

/// Runs `CLIENTS` threads against the served handler. Client `c`
/// creates one object, then issues `WRITES_PER_CLIENT` writes with
/// offset = its own sequence number — the audit log records the offset
/// as `arg1`, which lets the checker reconstruct issue order.
fn hammer(server: &TcpServerHandle) -> Vec<ObjectId> {
    let addr = server.addr();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let t = TcpTransport::connect(addr).unwrap();
                let ctx = RequestContext::user(UserId(100 + c), ClientId(c));
                let oid = match t.call(&ctx, &Request::Create).unwrap() {
                    Response::Created(oid) => oid,
                    other => panic!("unexpected response {other:?}"),
                };
                for seq in 0..WRITES_PER_CLIENT {
                    t.call(
                        &ctx,
                        &Request::Write {
                            oid,
                            offset: seq,
                            data: vec![c as u8; 8],
                        },
                    )
                    .unwrap();
                }
                t.call(&ctx, &Request::Sync).unwrap();
                oid
            })
        })
        .collect();
    threads.into_iter().map(|t| t.join().unwrap()).collect()
}

/// Asserts the recovered audit stream is a serializable interleaving:
/// per client, the `Write` records form exactly the issued sequence
/// (offsets 0..WRITES_PER_CLIENT in order — no loss, no duplication,
/// no reordering), and every record claims a known client.
fn check_interleaving(records: &[AuditRecord], oids: &[ObjectId]) {
    for c in 0..CLIENTS {
        let issued: Vec<u64> = records
            .iter()
            .filter(|r| r.client == ClientId(c) && r.op == OpKind::Write)
            .map(|r| {
                assert!(r.ok, "client {c} write denied");
                assert_eq!(r.object, oids[c as usize], "write audited on wrong object");
                r.arg1
            })
            .collect();
        let expect: Vec<u64> = (0..WRITES_PER_CLIENT).collect();
        assert_eq!(issued, expect, "client {c} stream not serial");
    }
    let total = records
        .iter()
        .filter(|r| r.op == OpKind::Write && r.client.0 < CLIENTS)
        .count() as u64;
    assert_eq!(total, CLIENTS as u64 * WRITES_PER_CLIENT, "lost/extra writes");
}

#[test]
fn tcp_stress_single_drive_audit_is_serializable() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let drive = Arc::new(
        S4Drive::format(
            MemDisk::with_capacity_bytes(64 << 20),
            DriveConfig::small_test(),
            clock,
        )
        .unwrap(),
    );
    let server = TcpServerHandle::serve(drive.clone(), "127.0.0.1:0").unwrap();
    let oids = hammer(&server);
    let stats = TcpTransport::connect(server.addr())
        .unwrap()
        .fetch_stats()
        .unwrap();
    assert!(stats.contains("s4_requests_total"));
    server.shutdown();

    let dev = unwrap_arc(drive).unmount().unwrap();
    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap();
    let admin = RequestContext::admin(ClientId(0), 42);
    let records = d2.read_audit_records(&admin).unwrap();
    check_interleaving(&records, &oids);
}

#[test]
fn tcp_stress_array_merged_audit_is_serializable() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..4)
        .map(|_| MemDisk::with_capacity_bytes(64 << 20))
        .collect();
    let array = Arc::new(
        S4Array::format(
            devices,
            DriveConfig::small_test(),
            ArrayConfig::default(),
            clock,
        )
        .unwrap(),
    );
    let server = TcpServerHandle::serve(array.clone(), "127.0.0.1:0").unwrap();
    let oids = hammer(&server);
    // The aggregated exposition is served over the same wire.
    let stats = TcpTransport::connect(server.addr())
        .unwrap()
        .fetch_stats()
        .unwrap();
    assert!(stats.contains("s4_array_shards 4"));
    server.shutdown();

    let devices = unwrap_arc(array).unmount().unwrap();
    let (a2, reports) = S4Array::mount(
        devices,
        DriveConfig::small_test(),
        ArrayConfig::default(),
        SimClock::new(),
    )
    .unwrap();
    assert_eq!(reports.len(), 4);

    // Each client's object lives on one shard; its writes are audited
    // only there, in order. The merged stream must still read as a
    // serializable interleaving — and each per-shard stream on its own
    // must as well (a shard never reorders its queue).
    let admin = RequestContext::admin(ClientId(0), 42);
    let merged: Vec<AuditRecord> = a2
        .read_audit_merged(&admin)
        .unwrap()
        .into_iter()
        .map(|r| r.record)
        .collect();
    check_interleaving(&merged, &oids);
    let mut shards_with_writes = 0;
    for s in 0..4 {
        let own = a2.shard_drive(s).read_audit_records(&admin).unwrap();
        if own.iter().any(|r| r.op == OpKind::Write) {
            shards_with_writes += 1;
        }
        for w in own.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }
    assert!(shards_with_writes >= 2, "load spread across shards");
}
