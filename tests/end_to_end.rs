//! Workspace-level integration tests: the full stack (workload → NFS
//! translator → RPC transport → drive → journal → log → simulated disk)
//! exercised end to end.

use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_detect::damage_report;
use s4_fs::tools::{ls_at, read_file_at, restore_file};
use s4_fs::{FileServer, FsError, LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};
use s4_workloads::postmark::{self, PostmarkConfig};
use s4_workloads::sshbuild::{sshbuild_phases, SshBuildConfig};
use s4_workloads::{replay, replay_with_clock};

type Fs = S4FileServer<LoopbackTransport<TimedDisk<MemDisk>>>;

fn setup(disk_mb: u64) -> (Fs, Arc<S4Drive<TimedDisk<MemDisk>>>, SimClock) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(disk_mb << 20),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = Arc::new(S4Drive::format(disk, DriveConfig::default(), clock.clone()).unwrap());
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::lan_100mbit()),
        RequestContext::user(UserId(1), ClientId(1)),
        "itest",
        S4FsConfig::default(),
    )
    .unwrap();
    (fs, drive, clock)
}

#[test]
fn postmark_runs_clean_through_the_full_stack() {
    let (fs, drive, _clock) = setup(256);
    let pm = postmark::generate(&PostmarkConfig {
        nfiles: 200,
        transactions: 600,
        ..PostmarkConfig::default()
    });
    let create = replay(&fs, &pm.create);
    let txn = replay(&fs, &pm.transactions);
    let cleanup = replay(&fs, &pm.cleanup);
    assert_eq!(create.errors + txn.errors + cleanup.errors, 0);
    assert!(txn.bytes_written > 0 && txn.bytes_read > 0);
    // Every mutation left a version behind.
    let snap = drive.stats().snapshot();
    assert!(snap.versions_created > 1_000);
    assert!(snap.syncs > 1_000, "NFSv2 sync per mutating op");
}

#[test]
fn sshbuild_runs_clean_and_think_time_advances_the_clock() {
    let (fs, _drive, clock) = setup(128);
    let phases = sshbuild_phases(&SshBuildConfig::tiny());
    let unpack = replay_with_clock(&fs, &phases.unpack, &clock);
    let configure = replay_with_clock(&fs, &phases.configure, &clock);
    let build = replay_with_clock(&fs, &phases.build, &clock);
    assert_eq!(unpack.errors + configure.errors + build.errors, 0);
    // 8 sources x 10ms + 2 links x 3s of compile think time.
    assert!(build.elapsed > SimDuration::from_secs(6));
}

#[test]
fn crash_mid_workload_recovers_all_synced_state() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(128 << 20),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = Arc::new(S4Drive::format(disk, DriveConfig::default(), clock.clone()).unwrap());
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(1)),
        "crash",
        S4FsConfig::default(),
    )
    .unwrap();

    // Run a slice of PostMark (every op is synced by the translator),
    // remember the expected state.
    let pm = postmark::generate(&PostmarkConfig {
        nfiles: 80,
        transactions: 200,
        ..PostmarkConfig::default()
    });
    assert_eq!(replay(&fs, &pm.create).errors, 0);
    assert_eq!(replay(&fs, &pm.transactions).errors, 0);
    let root = fs.root();
    let mut expected: Vec<(String, Vec<u8>)> = Vec::new();
    for (name, h, kind) in fs.readdir(root).unwrap() {
        if kind == s4_fs::FileKind::Dir {
            for (fname, fh, _) in fs.readdir(h).unwrap() {
                let size = fs.getattr(fh).unwrap().size;
                let data = fs.read(fh, 0, size).unwrap();
                expected.push((format!("{name}/{fname}"), data));
            }
        }
    }
    assert!(!expected.is_empty());
    drop(fs);

    // Power loss. All drive memory vanishes; remount from the raw device.
    let dev = Arc::into_inner(drive).unwrap().crash();
    let clock2 = SimClock::new();
    let drive2 = Arc::new(S4Drive::mount(dev, DriveConfig::default(), clock2).unwrap());
    let fs2 = S4FileServer::mount(
        LoopbackTransport::new(drive2, NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(1)),
        "crash",
        S4FsConfig::default(),
    )
    .unwrap();
    for (path, want) in &expected {
        let h = fs2
            .resolve_path(path)
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        let size = fs2.getattr(h).unwrap().size;
        assert_eq!(&fs2.read(h, 0, size).unwrap(), want, "{path}");
    }
}

#[test]
fn intrusion_scenario_detect_diagnose_recover() {
    let (fs, drive, clock) = setup(128);
    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
    let root = fs.root();

    // Legitimate state.
    let secrets = fs.create(root, "secrets.txt").unwrap();
    fs.write(secrets, 0, b"launch codes: 0000").unwrap();
    let syslog = fs.create(root, "syslog").unwrap();
    fs.write(syslog, 0, b"boot ok\nlogin alice\n").unwrap();
    clock.advance(SimDuration::from_secs(100));
    let clean_point = fs.now();
    clock.advance(SimDuration::from_secs(100));

    // Intruder (client 66, stolen user credentials) scrubs and tampers.
    let evil = S4FileServer::mount(
        LoopbackTransport::new(Arc::clone(fs.transport().drive()), NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(66)),
        "itest",
        S4FsConfig::default(),
    )
    .unwrap();
    let esyslog = evil.resolve_path("syslog").unwrap();
    evil.truncate(esyslog, 0).unwrap();
    evil.write(esyslog, 0, b"boot ok\n").unwrap(); // scrubbed
    let esecrets = evil.resolve_path("secrets.txt").unwrap();
    evil.write(esecrets, 0, b"launch codes: HAHA").unwrap();
    let attack_end = fs.now();
    clock.advance(SimDuration::from_secs(500));

    // Diagnosis: the audit log names the client and the objects.
    let report = damage_report(
        &drive,
        &admin,
        ClientId(66),
        clean_point,
        attack_end,
        SimDuration::from_secs(60),
    )
    .unwrap();
    assert!(report.modified.contains(&esyslog));
    assert!(report.modified.contains(&esecrets));

    // The scrubbed log lines are still visible at the clean point.
    assert_eq!(
        read_file_at(&fs, "syslog", clean_point).unwrap(),
        b"boot ok\nlogin alice\n"
    );
    // ls at the clean point shows pre-attack sizes.
    let listing = ls_at(&fs, "", clean_point).unwrap();
    let syslog_row = listing.iter().find(|(n, _, _)| n == "syslog").unwrap();
    assert_eq!(syslog_row.2, 20);

    // Recovery: restore both files from the history pool.
    restore_file(&fs, "secrets.txt", clean_point).unwrap();
    restore_file(&fs, "syslog", clean_point).unwrap();
    assert_eq!(
        read_file_at(&fs, "secrets.txt", fs.now()).unwrap(),
        b"launch codes: 0000"
    );
    // The intruder's version is *still there* for forensics.
    let mid_attack = read_file_at(&fs, "secrets.txt", attack_end).unwrap();
    assert_eq!(mid_attack, b"launch codes: HAHA");
}

#[test]
fn detection_window_expiry_through_the_full_stack() {
    let (fs, drive, clock) = setup(128);
    let root = fs.root();
    let f = fs.create(root, "aging.txt").unwrap();
    fs.write(f, 0, b"version-a").unwrap();
    let t_a = fs.now();
    clock.advance(SimDuration::from_secs(3600));
    fs.write(f, 0, b"version-b").unwrap();
    let t_b = fs.now();

    // Shrink the window to one hour and age past version-a's deprecation.
    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
    drive
        .op_set_window(&admin, SimDuration::from_secs(3600))
        .unwrap();
    clock.advance(SimDuration::from_secs(2 * 3600));
    drive.op_sync(&admin).unwrap();
    drive.expire_versions().unwrap();

    // version-a (deprecated 3h ago) is gone; version-b (current) remains.
    assert!(matches!(
        fs.read_at(f, 0, 16, t_a),
        Err(FsError::Storage(_)) | Err(FsError::NotFound)
    ));
    assert_eq!(fs.read_at(f, 0, 16, t_b).unwrap(), b"version-b");
    assert_eq!(fs.read(f, 0, 16).unwrap(), b"version-b");
}

#[test]
fn history_pool_grows_and_cleaner_reclaims_under_pressure() {
    let (fs, drive, clock) = setup(96);
    let root = fs.root();
    let f = fs.create(root, "churn.bin").unwrap();
    // Heavy overwrite churn.
    for round in 0..200u32 {
        fs.write(f, 0, &vec![round as u8; 16 * 1024]).unwrap();
    }
    let util_with_history = drive.utilization();
    // Age everything out and reclaim.
    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
    drive.op_set_window(&admin, SimDuration::ZERO).unwrap();
    clock.advance(SimDuration::from_secs(10));
    drive.op_sync(&admin).unwrap();
    drive.expire_versions().unwrap();
    drive.clean().unwrap();
    drive.log().free_dead_segments();
    drive.force_anchor().unwrap();
    assert!(
        drive.utilization() < util_with_history / 4.0,
        "history reclaimed: {} -> {}",
        util_with_history,
        drive.utilization()
    );
    // Data intact after cleaning.
    let data = fs.read(f, 0, 16 * 1024).unwrap();
    assert!(data.iter().all(|&b| b == 199));
}

#[test]
fn baselines_and_s4_agree_on_file_semantics() {
    // Differential test: replay the same trace against S4 and the FFS
    // baseline; final file contents must agree byte-for-byte.
    let (s4, _drive, _clock) = setup(128);
    let clock2 = SimClock::new();
    let ffs = s4_baseline::ffs_server(
        TimedDisk::new(
            MemDisk::with_capacity_bytes(128 << 20),
            DiskModelParams::cheetah_9gb_10k(),
            clock2.clone(),
        ),
        clock2,
    )
    .unwrap();

    let pm = postmark::generate(&PostmarkConfig {
        nfiles: 60,
        transactions: 200,
        seed: 99,
        ..PostmarkConfig::default()
    });
    let trace: Vec<_> = pm
        .create
        .iter()
        .chain(pm.transactions.iter())
        .cloned()
        .collect();
    assert_eq!(replay(&s4, &trace).errors, 0);
    assert_eq!(replay(&ffs, &trace).errors, 0);

    let collect = |srv: &dyn FileServer| {
        let mut out = std::collections::BTreeMap::new();
        for (dname, dh, kind) in srv.readdir(srv.root()).unwrap() {
            if kind != s4_fs::FileKind::Dir {
                continue;
            }
            for (fname, fh, _) in srv.readdir(dh).unwrap() {
                let size = srv.getattr(fh).unwrap().size;
                out.insert(format!("{dname}/{fname}"), srv.read(fh, 0, size).unwrap());
            }
        }
        out
    };
    let a = collect(&s4);
    let b = collect(&ffs);
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b, "S4 and FFS disagree on final contents");
}
