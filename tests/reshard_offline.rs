//! Digest equality against an offline baseline: a live `4 → 8` split
//! (snapshot + catch-up + flip, clients untouched) must land every
//! object byte-for-byte identical to the obvious offline procedure —
//! unmount, export each moving object from its old home, apply it into
//! a freshly formatted doubled-class drive.
//!
//! Two arrays receive the same deterministic single-threaded workload,
//! so their object populations and digests match exactly. Array A is
//! split live; array B is unmounted and copied offline. Every surviving
//! object must digest identically on both sides.

use std::collections::BTreeMap;

use s4_array::{is_reserved, ArrayConfig, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, ObjectId, Request, RequestContext, Response, S4Drive, UserId};
use s4_reshard::{double_array, ReshardConfig};
use s4_simdisk::MemDisk;

const SHARDS: usize = 4;

fn disk() -> MemDisk {
    MemDisk::with_capacity_bytes(64 << 20)
}

fn array_cfg() -> ArrayConfig {
    ArrayConfig {
        mirrors: 1,
        ..ArrayConfig::default()
    }
}

fn build_array() -> S4Array<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..SHARDS).map(|_| disk()).collect();
    S4Array::format(devices, DriveConfig::small_test(), array_cfg(), clock).unwrap()
}

/// Deterministic mixed workload: creates, overwrites, appends,
/// truncates, attribute changes, and deletions — identical on every
/// array it runs against. Returns the oids that are still live.
fn workload(a: &S4Array<MemDisk>) -> Vec<ObjectId> {
    let ctx = RequestContext::user(UserId(7), ClientId(1));
    let mut oids = Vec::new();
    for i in 0..32u64 {
        let oid = match a.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        a.dispatch(
            &ctx,
            &Request::Write {
                oid,
                offset: 0,
                data: vec![i as u8 ^ 0x5a; 48 + (i as usize % 7) * 16],
            },
        )
        .unwrap();
        oids.push(oid);
    }
    for (i, &oid) in oids.iter().enumerate() {
        match i % 5 {
            0 => {
                a.dispatch(
                    &ctx,
                    &Request::Append {
                        oid,
                        data: vec![0xab; 24],
                    },
                )
                .unwrap();
            }
            1 => {
                a.dispatch(&ctx, &Request::Truncate { oid, len: 8 }).unwrap();
            }
            2 => {
                a.dispatch(
                    &ctx,
                    &Request::Write {
                        oid,
                        offset: 11,
                        data: vec![i as u8; 97],
                    },
                )
                .unwrap();
            }
            _ => {}
        }
    }
    // Delete every fourth object so the migration has tombstones to
    // get right (a moved-then-deleted object must not resurrect).
    let mut live = Vec::new();
    for (i, &oid) in oids.iter().enumerate() {
        if i % 4 == 3 {
            a.dispatch(&ctx, &Request::Delete { oid }).unwrap();
        } else {
            live.push(oid);
        }
    }
    a.dispatch(&ctx, &Request::Sync).unwrap();
    live
}

#[test]
fn live_split_matches_offline_copy_digests() {
    let admin = RequestContext::admin(ClientId(0), 42);

    // Identical workloads on two identical arrays.
    let a = build_array();
    let b = build_array();
    let live_a = workload(&a);
    let live_b = workload(&b);
    assert_eq!(live_a, live_b, "workload is not deterministic");

    // --- Array A: live online split to 8 shards.
    let groups: Vec<Vec<MemDisk>> = (0..SHARDS).map(|_| vec![disk()]).collect();
    let reports = double_array(&a, groups, ReshardConfig::default()).unwrap();
    assert_eq!(reports.len(), SHARDS);
    assert_eq!(a.epoch().base, 2 * SHARDS);

    // --- Array B: offline copy. Unmount, then per old shard export the
    // moving half into a fresh doubled-class drive.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let stride = 2 * SHARDS as u64;
    let mut offline: BTreeMap<u64, u64> = BTreeMap::new();
    for (slot, dev) in b.unmount().unwrap().into_iter().enumerate() {
        let src = S4Drive::mount(
            dev,
            DriveConfig::small_test().with_oid_class(SHARDS as u64, slot as u64),
            clock.clone(),
        )
        .unwrap();
        let tgt = S4Drive::format(
            disk(),
            DriveConfig::small_test().with_oid_class(stride, (SHARDS + slot) as u64),
            clock.clone(),
        )
        .unwrap();
        for oid in src.live_object_ids(&admin).unwrap() {
            if is_reserved(ObjectId(oid)) {
                continue;
            }
            if oid % stride == (SHARDS + slot) as u64 {
                let obj = src
                    .reshard_export(&admin, ObjectId(oid), None)
                    .unwrap()
                    .expect("live object must export");
                tgt.reshard_apply(&admin, &obj).unwrap();
                offline.insert(oid, tgt.object_digest(&admin, ObjectId(oid)).unwrap());
            } else {
                offline.insert(oid, src.object_digest(&admin, ObjectId(oid)).unwrap());
            }
        }
    }

    // The offline baseline saw exactly the objects that survived.
    let survivors: Vec<u64> = live_b.iter().map(|o| o.0).collect();
    assert_eq!(offline.keys().copied().collect::<Vec<_>>(), survivors);

    // --- Every object digests identically: live migration lost and
    // changed nothing relative to the offline copy.
    for &oid in &live_a {
        let s = a.shard_index_of(oid);
        assert_eq!(a.shard_slot(s), (oid.0 % stride) as usize, "wrong home for {oid:?}");
        assert_eq!(
            a.shard_drive(s).object_digest(&admin, oid).unwrap(),
            offline[&oid.0],
            "object {oid:?} diverged from the offline baseline"
        );
    }
}
