//! Cross-shard two-phase-commit crash torture (see
//! `crates/torture/src/txn.rs` and DESIGN §6i).
//!
//! The bounded campaign is the CI gate: two unmirrored shards, ≤ 24
//! crash points sampled evenly across both devices' 2PC windows, one
//! torn-sector pattern per point rotating through the standard mix.
//! The exhaustive campaigns (`--ignored`) enumerate **every** countable
//! device request of the window — on the two-shard array and on a
//! three-shard × two-mirror array — under two patterns per point.
//!
//! Every replay asserts all-or-nothing recovery (uniformly old or
//! uniformly new content across every shard and mirror), decision
//! convergence (nothing in doubt, no note outliving its mount), audit
//! prefix integrity, and remount idempotence — so these tests pass
//! only if the commit protocol is atomic at every power-loss point.

use s4_simdisk::TornPattern;
use s4_torture::txn::{txn_campaign, txn_golden, txn_torture_point, TxnTortureConfig};

#[test]
fn bounded_txn_campaign_is_atomic_at_every_sampled_point() {
    let cfg = TxnTortureConfig::bounded();
    let summary = txn_campaign(&cfg);
    // One greppable line per campaign; verify.sh and CI tee these into
    // the txn-torture summary artifact.
    println!("TXN_TORTURE bounded {summary:?}");
    assert!(summary.domain >= 8, "2PC window too small: {summary:?}");
    assert!(summary.crash_points <= 24, "bounded cap violated: {summary:?}");
    assert_eq!(summary.replays, summary.crash_points * cfg.replays_per_point());
    // Crash points cover both sides of the commit point, so the
    // campaign must observe both recovered decisions.
    assert!(summary.aborted > 0, "no pre-commit-point crash: {summary:?}");
    assert!(summary.committed > 0, "no post-commit-point crash: {summary:?}");
}

#[test]
fn crash_on_first_and_last_window_request() {
    // The window edges: dying on the very first countable request of
    // the protocol must roll back cleanly; a fault armed past the
    // window never fires and the protocol simply completes.
    let cfg = TxnTortureConfig::bounded();
    let g = txn_golden(&cfg);
    let (start, end) = g.windows[0];
    let first = txn_torture_point(&cfg, 0, start, TornPattern::Prefix(0));
    assert!(first.died);
    assert!(!first.committed, "first-request crash must abort");
    let past = txn_torture_point(&cfg, 0, end + 100, TornPattern::Prefix(0));
    assert!(!past.died);
    assert!(past.committed, "undisturbed protocol must commit");
}

#[test]
fn torn_decision_note_recovers_uniformly() {
    // Walk the shard-0 device (where the decision note lives) across
    // its whole window with a sector-holed tear — the nastiest pattern
    // for the single commit-point write. Every recovery must still be
    // all-or-nothing (txn_torture_point panics otherwise).
    let cfg = TxnTortureConfig::bounded();
    let g = txn_golden(&cfg);
    let (start, end) = g.windows[0];
    let mut decisions = Vec::new();
    for k in start..end {
        let out = txn_torture_point(&cfg, 0, k, TornPattern::Holed { start: 1, len: 2 });
        decisions.push(out.committed);
    }
    // The decision must be monotone in the crash point on the
    // coordinator device: once a crash point recovers committed, every
    // later one does too (the note write is the single commit point).
    let first_commit = decisions.iter().position(|&c| c);
    if let Some(i) = first_commit {
        assert!(
            decisions[i..].iter().all(|&c| c),
            "decision not monotone across the coordinator window: {decisions:?}"
        );
    }
}

#[test]
#[ignore = "exhaustive: every crash point on every device; run explicitly"]
fn exhaustive_txn_campaign_two_shards() {
    let mut cfg = TxnTortureConfig::bounded();
    cfg.max_crash_points = None;
    cfg.patterns_per_point = Some(2);
    let summary = txn_campaign(&cfg);
    println!("TXN_TORTURE exhaustive-two-shard {summary:?}");
    assert_eq!(summary.crash_points as u64, summary.domain, "{summary:?}");
    assert!(summary.committed > 0 && summary.aborted > 0, "{summary:?}");
}

#[test]
#[ignore = "exhaustive: mirrored 3-shard array, every crash point; run explicitly"]
fn exhaustive_txn_campaign_mirrored() {
    let summary = txn_campaign(&TxnTortureConfig::exhaustive());
    println!("TXN_TORTURE exhaustive-mirrored {summary:?}");
    assert_eq!(summary.crash_points as u64, summary.domain, "{summary:?}");
    assert!(summary.committed > 0 && summary.aborted > 0, "{summary:?}");
}
