//! End-to-end cross-shard causal trace assembly (DESIGN §6j): a traced
//! atomic batch on a 4×2 mirrored array must assemble into exactly one
//! causal tree spanning the coordinator, every participant shard, and
//! both mirror members per shard — and the span set must survive a
//! crash and remount (each span is vouched for by the member stream
//! that persisted it, so the assembled tree is rebuilt purely from the
//! crash-surviving per-drive flight recorders).

use std::collections::BTreeSet;

use s4_array::{ArrayConfig, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    ClientId, DriveConfig, ObjectId, Request, RequestContext, Response, TraceCtx, UserId,
    PHASE_DECIDE, PHASE_NOTE, PHASE_PREPARE,
};
use s4_detect::TraceTree;
use s4_simdisk::MemDisk;

const SHARDS: usize = 4;
const MIRRORS: usize = 2;
/// The client pre-stamps its own trace id (as a transport would), so
/// the test can find the batch's tree among the seeding traffic's.
const TRACE_ID: u64 = 0x42;

fn cfg() -> ArrayConfig {
    ArrayConfig {
        mirrors: MIRRORS,
        ..ArrayConfig::default()
    }
}

fn user() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

fn admin() -> RequestContext {
    // small_test()'s admin token.
    RequestContext::admin(ClientId(0), 42)
}

/// Formats a 4×2 array and seeds one synced object per shard.
fn build() -> (S4Array<MemDisk>, Vec<ObjectId>) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..SHARDS * MIRRORS)
        .map(|_| MemDisk::with_capacity_bytes(64 << 20))
        .collect();
    let a = S4Array::format(devices, DriveConfig::small_test(), cfg(), clock).unwrap();
    let ctx = user();
    let mut oids: Vec<Option<ObjectId>> = vec![None; SHARDS];
    while oids.iter().any(Option::is_none) {
        let oid = match a.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        oids[a.shard_index_of(oid)].get_or_insert(oid);
    }
    a.dispatch(&ctx, &Request::Sync).unwrap();
    (a, oids.into_iter().map(Option::unwrap).collect())
}

/// Issues the traced cross-shard atomic batch: one write per shard
/// under a client-stamped trace context.
fn traced_batch(a: &S4Array<MemDisk>, oids: &[ObjectId]) {
    let ctx = user().with_trace(TraceCtx {
        trace_id: TRACE_ID,
        origin: 0,
        phase: 0,
    });
    let reqs = oids
        .iter()
        .map(|&oid| Request::Write {
            oid,
            offset: 0,
            data: b"txn-payload".to_vec(),
        })
        .collect();
    match a.dispatch(&ctx, &Request::Batch(reqs)).unwrap() {
        Response::Batch(rs) => assert_eq!(rs.len(), SHARDS, "every slot answered"),
        other => panic!("unexpected response {other:?}"),
    }
}

/// The batch's tree — asserting it is the *only* one with its id.
fn the_tree(trees: &[TraceTree]) -> &TraceTree {
    let hits: Vec<&TraceTree> = trees.iter().filter(|t| t.trace_id == TRACE_ID).collect();
    assert_eq!(
        hits.len(),
        1,
        "the batch must assemble into exactly one causal tree"
    );
    hits[0]
}

/// Canonical span identity for cross-remount comparison: which member
/// stream vouches for it plus the record's own identity fields.
fn span_set(tree: &TraceTree) -> BTreeSet<(usize, usize, u64, u8, u8, bool, u64)> {
    tree.spans
        .iter()
        .map(|s| {
            (
                s.shard,
                s.member,
                s.entry.seq,
                s.entry.phase,
                s.entry.op as u8,
                s.entry.ok,
                s.entry.object.0,
            )
        })
        .collect()
}

/// The tree must span the whole protocol: every participant shard,
/// both mirror members per shard, with prepare + decide spans on each
/// member and the commit-point note exactly on the coordinator
/// (shard 0) members.
fn assert_full_span_set(tree: &TraceTree) {
    assert_eq!(
        tree.shards(),
        (0..SHARDS).collect::<BTreeSet<_>>(),
        "tree must span every participant shard"
    );
    assert_eq!(
        tree.members().len(),
        SHARDS * MIRRORS,
        "tree must span both mirror members of every shard"
    );
    for s in 0..SHARDS {
        for m in 0..MIRRORS {
            let phases: Vec<u8> = tree
                .spans
                .iter()
                .filter(|sp| sp.shard == s && sp.member == m)
                .map(|sp| sp.entry.phase)
                .collect();
            assert!(
                phases.contains(&PHASE_PREPARE),
                "shard {s} member {m} missing its prepare span"
            );
            assert!(
                phases.contains(&PHASE_DECIDE),
                "shard {s} member {m} missing its decide span"
            );
            assert_eq!(
                phases.contains(&PHASE_NOTE),
                s == 0,
                "shard {s} member {m}: commit-point note on the wrong shard"
            );
        }
    }
}

#[test]
fn cross_shard_batch_assembles_one_tree_and_survives_remount() {
    let (a, oids) = build();
    traced_batch(&a, &oids);

    // Live assembly: one tree, full causal span set.
    let trees = a.assemble_all_traces(&admin()).unwrap();
    let live_spans = {
        let tree = the_tree(&trees);
        assert_full_span_set(tree);
        span_set(tree)
    };

    // Anchor every member (the durability point for the buffered trace
    // tails), then crash the whole array — volatile state is gone.
    for s in 0..SHARDS {
        for m in 0..MIRRORS {
            a.member_drive(s, m).force_anchor().unwrap();
        }
    }
    let devices = a.crash().unwrap();
    let (a2, reports) = S4Array::mount(devices, DriveConfig::small_test(), cfg(), SimClock::new())
        .unwrap();
    assert_eq!(reports.len(), SHARDS * MIRRORS);

    let trees = a2.assemble_all_traces(&admin()).unwrap();
    let remount_spans = {
        let tree = the_tree(&trees);
        assert_full_span_set(tree);
        span_set(tree)
    };
    assert_eq!(
        live_spans, remount_spans,
        "the span set must survive crash + remount unchanged"
    );

    // And a second remount reproduces it byte-for-byte (assembly is a
    // pure function of the persisted member streams).
    let devices = a2.crash().unwrap();
    let (a3, _) = S4Array::mount(devices, DriveConfig::small_test(), cfg(), SimClock::new())
        .unwrap();
    let trees = a3.assemble_all_traces(&admin()).unwrap();
    let tree = the_tree(&trees);
    assert_full_span_set(tree);
    assert_eq!(span_set(tree), remount_spans, "remount changed the tree");
}

#[test]
fn untraced_array_assembles_nothing_and_slowest_ranks_by_rpc() {
    // With tracing disabled at the array, the same batch leaves no
    // assemblable trace ids (records stay v1), so assembly is empty.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..SHARDS * MIRRORS)
        .map(|_| MemDisk::with_capacity_bytes(64 << 20))
        .collect();
    let a = S4Array::format(
        devices,
        DriveConfig::small_test(),
        ArrayConfig {
            mirrors: MIRRORS,
            trace: false,
            ..ArrayConfig::default()
        },
        clock,
    )
    .unwrap();
    let ctx = user();
    let oid = match a.dispatch(&ctx, &Request::Create).unwrap() {
        Response::Created(oid) => oid,
        other => panic!("unexpected response {other:?}"),
    };
    a.dispatch(
        &ctx,
        &Request::Write {
            oid,
            offset: 0,
            data: vec![1; 64],
        },
    )
    .unwrap();
    assert!(
        a.assemble_all_traces(&admin()).unwrap().is_empty(),
        "untraced array must assemble no trees"
    );

    // A pre-stamped context still traces (the gate only stops the array
    // from *minting* ids), and `slowest_traces` surfaces it.
    let stamped = ctx.with_trace(TraceCtx {
        trace_id: 0x510,
        origin: 0,
        phase: 0,
    });
    a.dispatch(
        &ctx.with_trace(TraceCtx {
            trace_id: 0x511,
            origin: 0,
            phase: 0,
        }),
        &Request::Read {
            oid,
            offset: 0,
            len: 8,
            time: None,
        },
    )
    .unwrap();
    a.dispatch(
        &stamped,
        &Request::Write {
            oid,
            offset: 0,
            data: vec![2; 32],
        },
    )
    .unwrap();
    let trees = a.assemble_all_traces(&admin()).unwrap();
    assert_eq!(trees.len(), 2, "pre-stamped requests assemble");
    let slowest = s4_detect::slowest_traces(&trees, 1);
    assert_eq!(slowest.len(), 1);
    let expected_max = trees.iter().map(TraceTree::max_rpc_us).max().unwrap();
    assert_eq!(slowest[0].max_rpc_us(), expected_max);
    a.unmount().unwrap();
}
