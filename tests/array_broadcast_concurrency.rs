//! Broadcast fan-out really is concurrent: a scatter-gather request
//! (Sync) must be *submitted* to every shard worker before any reply is
//! collected, so the array-wide latency is one shard's latency, not the
//! sum over shards.
//!
//! Each shard gets an audit observer that sleeps a fixed wall-clock
//! delay on every Sync record — a stand-in for a slow detection rule.
//! With 4 shards sleeping 150 ms each, a concurrent scatter completes
//! in ~150 ms; a serial one needs ~600 ms. The assertion splits that
//! gap with a wide margin on both sides.

use std::time::{Duration, Instant};

use s4_array::{ArrayConfig, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    AuditObserver, AuditRecord, ClientId, DriveConfig, OpKind, Request, RequestContext, Response,
    UserId,
};
use s4_simdisk::MemDisk;

const SHARDS: usize = 4;
const DELAY: Duration = Duration::from_millis(150);

struct SleepyObserver;

impl AuditObserver for SleepyObserver {
    fn on_record(&mut self, rec: &AuditRecord) -> Vec<Vec<u8>> {
        if rec.op == OpKind::Sync {
            std::thread::sleep(DELAY);
        }
        Vec::new()
    }
}

#[test]
fn broadcast_sync_overlaps_shard_workers() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..SHARDS)
        .map(|_| MemDisk::with_capacity_bytes(64 << 20))
        .collect();
    let a = S4Array::format(
        devices,
        DriveConfig::small_test(),
        ArrayConfig {
            mirrors: 1,
            ..ArrayConfig::default()
        },
        clock,
    )
    .unwrap();
    for s in 0..SHARDS {
        a.shard_drive(s).register_audit_observer(Box::new(SleepyObserver));
    }

    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let started = Instant::now();
    match a.dispatch(&ctx, &Request::Sync).unwrap() {
        Response::Ok => {}
        other => panic!("unexpected response {other:?}"),
    }
    let elapsed = started.elapsed();

    assert!(
        elapsed >= Duration::from_millis(100),
        "observers never ran ({elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_millis(450),
        "broadcast Sync took {elapsed:?}: shard workers were visited serially, \
         not scatter-gathered ({SHARDS} shards x {DELAY:?} each)"
    );
}
