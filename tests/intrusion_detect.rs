//! End-to-end test of the `s4-detect` subsystem on the paper's §2
//! intrusion scenario: the online detectors must flag the log scrub and
//! the stolen-credential mutations with the right object ids and
//! timestamps, and an executed recovery plan must put the pre-intrusion
//! contents back.

use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock, SimDuration, SimTime};
use s4_core::{ClientId, DriveConfig, ObjectId, RequestContext, S4Drive, UserId};
use s4_detect::{
    execute_plan, install_standard_monitor, plan_recovery, read_alerts, scan_audit, tree_diff,
    Severity, Suspects,
};
use s4_fs::tools::read_file_at;
use s4_fs::{FileServer, LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::MemDisk;

const PASSWD0: &[u8] = b"root:x:0:0\nalice:x:1000:1000\n";
const LOG0: &[u8] = b"09:01 sshd accepted key for alice\n";

#[test]
fn section2_intrusion_is_detected_and_recovered() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let drive = Arc::new(
        S4Drive::format(
            MemDisk::with_capacity_bytes(64 << 20),
            DriveConfig::default(),
            clock.clone(),
        )
        .unwrap(),
    );
    install_standard_monitor(&drive);
    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);

    // Clean system: client 1 builds /etc/passwd and /var/log/auth.log.
    let system = RequestContext::user(UserId(1), ClientId(1));
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::free()),
        system,
        "rootfs",
        S4FsConfig::default(),
    )
    .unwrap();
    let root = fs.root();
    fs.mkdir(root, "etc").unwrap();
    fs.mkdir(root, "var").unwrap();
    fs.mkdir(fs.resolve_path("var").unwrap(), "log").unwrap();
    let passwd = fs.create(fs.resolve_path("etc").unwrap(), "passwd").unwrap();
    fs.write(passwd, 0, PASSWD0).unwrap();
    let log = fs
        .create(fs.resolve_path("var/log").unwrap(), "auth.log")
        .unwrap();
    fs.write(log, 0, LOG0).unwrap();
    clock.advance(SimDuration::from_secs(3600));
    // The intruder's login is appended by the honest logging path.
    fs.write(log, LOG0.len() as u64, b"10:13 key for root from 6.6.6.6\n")
        .unwrap();
    let pre_scrub = fs.now();
    assert!(read_alerts(&drive, &admin).unwrap().is_empty());

    // The intrusion, from client 66 with stolen credentials.
    clock.advance(SimDuration::from_secs(5));
    let evil = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(66)),
        "rootfs",
        S4FsConfig::default(),
    )
    .unwrap();
    let scrub_start = drive.now();
    evil.truncate(log, 0).unwrap(); // scrub the log...
    evil.write(log, 0, LOG0).unwrap(); // ...and re-write it sanitized
    let scrub_end = drive.now();
    evil.write(passwd, PASSWD0.len() as u64, b"evil:x:0:0\n").unwrap();
    let tmp = evil.mkdir(evil.root(), "tmp").unwrap();
    let tool = evil.create(tmp, ".scan").unwrap();
    evil.write(tool, 0, b"nc -l 31337 &\n").unwrap();
    clock.advance(SimDuration::from_secs(30));
    evil.remove(tmp, ".scan").unwrap();
    let post_intrusion = drive.now();

    // ---- Detection: the persisted alerts name the scrubbed log, the
    // scrub instant, and the intruding client.
    let alerts = read_alerts(&drive, &admin).unwrap();
    let scrub = alerts
        .iter()
        .find(|a| a.rule == "append-only-violation")
        .expect("log scrub not flagged");
    assert_eq!(scrub.object, ObjectId(log));
    assert_eq!(scrub.client, ClientId(66));
    assert_eq!(scrub.severity, Severity::Critical);
    assert!(scrub.time >= scrub_start && scrub.time <= scrub_end);
    let plant = alerts
        .iter()
        .find(|a| a.rule == "foreign-client" && a.object == ObjectId(passwd))
        .expect("backdoor plant not flagged");
    assert!(plant.time >= scrub_end && plant.time <= post_intrusion);
    assert!(alerts
        .iter()
        .all(|a| a.client == ClientId(66)), "honest activity flagged: {alerts:?}");
    // The offline audit sweep agrees with the online monitor.
    let offline = scan_audit(&drive, &admin).unwrap();
    assert_eq!(
        offline.iter().filter(|a| a.rule == "append-only-violation").count(),
        1
    );

    // ---- Recovery: plan against the instant before the first alert.
    let first = alerts.iter().map(|a| a.time).min().unwrap();
    let t = SimTime::from_micros(first.as_micros() - 1);
    assert!(t >= pre_scrub);
    let plan = plan_recovery(&drive, &admin, &Suspects::client(ClientId(66)), t).unwrap();
    assert!(!plan.actions.is_empty());
    let outcome = execute_plan(&drive, &admin, &plan).unwrap();
    assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);

    // Pre-intrusion contents are back (checked via a fresh mount so no
    // client cache can mask drive state).
    let check = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::free()),
        system,
        "rootfs",
        S4FsConfig::default(),
    )
    .unwrap();
    let now = check.now();
    assert_eq!(read_file_at(&check, "etc/passwd", now).unwrap(), PASSWD0);
    let log_now = read_file_at(&check, "var/log/auth.log", now).unwrap();
    assert!(log_now.starts_with(LOG0));
    assert!(String::from_utf8_lossy(&log_now).contains("6.6.6.6"));
    assert!(check.resolve_path("tmp").is_err());
    // The wiped tool is quarantined: landmark-pinned in the history pool.
    assert!(!drive.landmarks(&admin, ObjectId(tool)).unwrap().is_empty());
    // And the namespace now matches the pre-intrusion tree.
    let rootfs = drive.op_pmount(&admin, "rootfs", None).unwrap();
    let diff = tree_diff(&drive, &admin, rootfs, t, None).unwrap();
    assert!(diff.added.is_empty() && diff.removed.is_empty(), "{diff:?}");
}
