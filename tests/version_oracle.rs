// Hermetic-build gate: needs the external `proptest` crate. Re-add
// `proptest = "1"` to [dev-dependencies] and run
// `cargo test --features proptest-tests` to enable.
#![cfg(feature = "proptest-tests")]

//! Property-based tests: the drive's comprehensive versioning against an
//! in-memory oracle.
//!
//! For arbitrary mutation sequences, reading any object at any past
//! instant must reproduce exactly what the oracle says the object looked
//! like then — across syncs, remounts, and crashes.

use std::collections::HashMap;

use proptest::prelude::*;

use s4_clock::{SimClock, SimDuration, SimTime};
use s4_core::{ClientId, DriveConfig, ObjectId, RequestContext, S4Drive, UserId};
use s4_simdisk::MemDisk;

#[derive(Debug, Clone)]
enum Op {
    Create,
    Write {
        obj: usize,
        offset: u16,
        len: u16,
        fill: u8,
    },
    Truncate {
        obj: usize,
        len: u16,
    },
    Delete {
        obj: usize,
    },
    SetAttr {
        obj: usize,
        attr: u8,
    },
    Sync,
    Tick {
        secs: u8,
    },
    /// Runs the differencing pass; must be invisible to every read.
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::Create),
        4 => (0usize..6, 0u16..12_000, 1u16..6_000, any::<u8>())
            .prop_map(|(obj, offset, len, fill)| Op::Write { obj, offset, len, fill }),
        1 => (0usize..6, 0u16..12_000).prop_map(|(obj, len)| Op::Truncate { obj, len }),
        1 => (0usize..6).prop_map(|obj| Op::Delete { obj }),
        1 => (0usize..6, any::<u8>()).prop_map(|(obj, attr)| Op::SetAttr { obj, attr }),
        2 => Just(Op::Sync),
        2 => (1u8..30).prop_map(|secs| Op::Tick { secs }),
        1 => Just(Op::Compact),
    ]
}

/// Oracle: full object states snapshotted at every instant a mutation
/// happened.
#[derive(Default, Clone)]
struct OracleObject {
    /// (time, contents, attr, alive); one entry per mutation instant
    /// (later entries at the same time overwrite earlier ones — reads use
    /// the last state at or before the query time).
    history: Vec<(SimTime, Vec<u8>, u8, bool)>,
}

impl OracleObject {
    fn at(&self, t: SimTime) -> Option<(&[u8], u8, bool)> {
        self.history
            .iter()
            .rev()
            .find(|(ht, _, _, _)| *ht <= t)
            .map(|(_, d, a, alive)| (d.as_slice(), *a, *alive))
    }
}

fn run_case(ops: Vec<Op>, remount_each: usize) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let mut drive = Some(
        S4Drive::format(
            MemDisk::with_capacity_bytes(96 << 20),
            DriveConfig::small_test(),
            clock.clone(),
        )
        .unwrap(),
    );
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let admin = RequestContext::admin(ClientId(0), 42);

    let mut oids: Vec<ObjectId> = Vec::new();
    let mut oracle: HashMap<u64, OracleObject> = HashMap::new();
    let mut checkpoints: Vec<SimTime> = Vec::new();

    for (i, op) in ops.iter().enumerate() {
        let d = drive.as_ref().unwrap();
        // Mutations at distinct instants keep oracle comparison simple.
        clock.advance(SimDuration::from_millis(1));
        match op {
            Op::Create => {
                let oid = d.op_create(&ctx, None).unwrap();
                oids.push(oid);
                let entry = oracle.entry(oid.0).or_default();
                entry.history.push((d.now(), Vec::new(), 0, true));
            }
            Op::Write {
                obj,
                offset,
                len,
                fill,
            } if !oids.is_empty() => {
                let oid = oids[obj % oids.len()];
                let o = oracle.get_mut(&oid.0).unwrap();
                let Some((data, attr, alive)) =
                    o.at(SimTime::MAX).map(|(d, a, al)| (d.to_vec(), a, al))
                else {
                    continue;
                };
                if !alive {
                    assert!(d
                        .op_write(&ctx, oid, *offset as u64, &vec![*fill; *len as usize])
                        .is_err());
                    continue;
                }
                let mut data = data;
                let end = *offset as usize + *len as usize;
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[*offset as usize..end].fill(*fill);
                d.op_write(&ctx, oid, *offset as u64, &vec![*fill; *len as usize])
                    .unwrap();
                o.history.push((d.now(), data, attr, true));
            }
            Op::Truncate { obj, len } if !oids.is_empty() => {
                let oid = oids[obj % oids.len()];
                let o = oracle.get_mut(&oid.0).unwrap();
                let Some((data, attr, alive)) =
                    o.at(SimTime::MAX).map(|(d, a, al)| (d.to_vec(), a, al))
                else {
                    continue;
                };
                if !alive {
                    assert!(d.op_truncate(&ctx, oid, *len as u64).is_err());
                    continue;
                }
                let mut data = data;
                data.resize(*len as usize, 0);
                d.op_truncate(&ctx, oid, *len as u64).unwrap();
                o.history.push((d.now(), data, attr, true));
            }
            Op::Delete { obj } if !oids.is_empty() => {
                let oid = oids[obj % oids.len()];
                let o = oracle.get_mut(&oid.0).unwrap();
                let Some((data, attr, alive)) =
                    o.at(SimTime::MAX).map(|(d, a, al)| (d.to_vec(), a, al))
                else {
                    continue;
                };
                if !alive {
                    assert!(d.op_delete(&ctx, oid).is_err());
                    continue;
                }
                d.op_delete(&ctx, oid).unwrap();
                o.history.push((d.now(), data, attr, false));
            }
            Op::SetAttr { obj, attr } if !oids.is_empty() => {
                let oid = oids[obj % oids.len()];
                let o = oracle.get_mut(&oid.0).unwrap();
                let Some((data, _a, alive)) =
                    o.at(SimTime::MAX).map(|(d, a, al)| (d.to_vec(), a, al))
                else {
                    continue;
                };
                if !alive {
                    continue;
                }
                d.op_setattr(&ctx, oid, vec![*attr]).unwrap();
                o.history.push((d.now(), data, *attr, true));
            }
            Op::Sync => {
                d.op_sync(&ctx).unwrap();
            }
            Op::Tick { secs } => {
                clock.advance(SimDuration::from_secs(*secs as u64));
            }
            Op::Compact => {
                d.compact_history().unwrap();
            }
            _ => {}
        }
        checkpoints.push(drive.as_ref().unwrap().now());

        // Periodic remount (clean unmount): everything must survive.
        if remount_each > 0 && i % remount_each == remount_each - 1 {
            let d = drive.take().unwrap();
            let dev = d.unmount().unwrap();
            drive = Some(S4Drive::mount(dev, DriveConfig::small_test(), clock.clone()).unwrap());
        }
    }

    // Final verification: every object at every checkpoint instant.
    let d = drive.as_ref().unwrap();
    d.op_sync(&ctx).unwrap();
    for (&raw_oid, o) in &oracle {
        let oid = ObjectId(raw_oid);
        for &t in &checkpoints {
            let Some((want_data, want_attr, alive)) = o.at(t) else {
                // Object not yet created at t.
                assert!(
                    d.op_getattr(&admin, oid, Some(t)).is_err(),
                    "{oid} should not exist at {t}"
                );
                continue;
            };
            if !alive {
                assert!(
                    d.op_read(&admin, oid, 0, 1 << 16, Some(t)).is_err(),
                    "{oid} deleted at {t} but readable"
                );
                continue;
            }
            let got = d.op_read(&admin, oid, 0, 1 << 16, Some(t)).unwrap();
            assert_eq!(got, want_data, "{oid} contents at {t}");
            let attrs = d.op_getattr(&admin, oid, Some(t)).unwrap();
            assert_eq!(attrs.size, want_data.len() as u64, "{oid} size at {t}");
            let want_attr_blob: Vec<u8> = if o.history.iter().any(|(ht, _, _, _)| *ht <= t) {
                // Attr blob is empty until the first SetAttr.
                let (_, _, a, _) = o
                    .history
                    .iter()
                    .rev()
                    .find(|(ht, _, _, _)| *ht <= t)
                    .unwrap();
                let _ = a;
                if attrs.opaque.is_empty() {
                    Vec::new()
                } else {
                    vec![want_attr]
                }
            } else {
                Vec::new()
            };
            assert_eq!(attrs.opaque, want_attr_blob, "{oid} attrs at {t}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 400,
        .. ProptestConfig::default()
    })]

    #[test]
    fn drive_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_case(ops, 0);
    }

    #[test]
    fn drive_matches_oracle_across_remounts(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_case(ops, 12);
    }
}
