//! Administrative `Flush` across many objects (Table 1: "removes all
//! versions of all objects between two times") — e.g. expunging every
//! trace of a sensitive document that briefly existed drive-wide.

use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_simdisk::MemDisk;

#[test]
fn flush_expunges_an_interval_across_all_objects() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let admin = RequestContext::admin(ClientId(0), 42);

    // Phase A: normal state on several objects.
    let oids: Vec<_> = (0..5)
        .map(|i| {
            let oid = d.op_create(&ctx, None).unwrap();
            d.op_write(&ctx, oid, 0, format!("clean-{i}").as_bytes())
                .unwrap();
            oid
        })
        .collect();
    d.op_sync(&ctx).unwrap();
    let t_clean = d.now();
    clock.advance(SimDuration::from_secs(100));

    // Phase B: a sensitive interval — every object is overwritten with
    // material that must later be expunged.
    let flush_from = d.now();
    for (i, oid) in oids.iter().enumerate() {
        d.op_write(&ctx, *oid, 0, format!("SECRET{i}").as_bytes())
            .unwrap();
    }
    d.op_sync(&ctx).unwrap();
    let t_secret = d.now();
    let flush_to = d.now();
    clock.advance(SimDuration::from_secs(100));

    // Phase C: normal state resumes.
    for (i, oid) in oids.iter().enumerate() {
        d.op_write(&ctx, *oid, 0, format!("after-{i}").as_bytes())
            .unwrap();
    }
    d.op_sync(&ctx).unwrap();
    let t_after = d.now();

    // Before the flush, the secrets are (correctly) in the history pool.
    for oid in &oids {
        let data = d.op_read(&admin, *oid, 0, 16, Some(t_secret)).unwrap();
        assert!(data.starts_with(b"SECRET"));
    }

    d.op_flush(&admin, flush_from, flush_to).unwrap();

    // After the flush: the interval reads as the pre-interval state, and
    // the surrounding versions are untouched — on every object.
    for (i, oid) in oids.iter().enumerate() {
        let at_secret = d.op_read(&admin, *oid, 0, 16, Some(t_secret)).unwrap();
        assert_eq!(at_secret, format!("clean-{i}").as_bytes(), "obj {i}");
        let at_clean = d.op_read(&admin, *oid, 0, 16, Some(t_clean)).unwrap();
        assert_eq!(at_clean, format!("clean-{i}").as_bytes());
        let at_after = d.op_read(&admin, *oid, 0, 16, Some(t_after)).unwrap();
        assert_eq!(at_after, format!("after-{i}").as_bytes());
        let current = d.op_read(&ctx, *oid, 0, 16, None).unwrap();
        assert_eq!(current, format!("after-{i}").as_bytes());
    }

    // And the expunged state survives a remount.
    let dev = d.unmount().unwrap();
    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap();
    for (i, oid) in oids.iter().enumerate() {
        let at_secret = d2.op_read(&admin, *oid, 0, 16, Some(t_secret)).unwrap();
        assert_eq!(
            at_secret,
            format!("clean-{i}").as_bytes(),
            "obj {i} remount"
        );
    }
}
