//! Table 1 surface test: every RPC of the paper's interface is
//! dispatchable, audited, and behaves per its row (including which
//! operations accept time-based access).

use s4_clock::{SimClock, SimDuration, SimTime};
use s4_core::{
    AclEntry, ClientId, DriveConfig, ObjectId, OpKind, Perm, Request, RequestContext, Response,
    S4Drive, UserId,
};
use s4_simdisk::MemDisk;

fn drive() -> S4Drive<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock,
    )
    .unwrap()
}

#[test]
fn every_table1_rpc_dispatches() {
    let d = drive();
    let user = RequestContext::user(UserId(1), ClientId(1));
    let admin = RequestContext::admin(ClientId(0), 42);

    // Create
    let oid = match d.dispatch(&user, &Request::Create).unwrap() {
        Response::Created(oid) => oid,
        r => panic!("{r:?}"),
    };
    // Write / Append / Truncate
    d.dispatch(
        &user,
        &Request::Write {
            oid,
            offset: 0,
            data: b"0123456789".to_vec(),
        },
    )
    .unwrap();
    let t1 = d.now();
    d.clock().advance(SimDuration::from_millis(10));
    match d
        .dispatch(
            &user,
            &Request::Append {
                oid,
                data: b"ABC".to_vec(),
            },
        )
        .unwrap()
    {
        Response::NewSize(13) => {}
        r => panic!("{r:?}"),
    }
    d.dispatch(&user, &Request::Truncate { oid, len: 5 })
        .unwrap();
    // Sync
    d.dispatch(&user, &Request::Sync).unwrap();

    // Read with and without time.
    match d
        .dispatch(
            &user,
            &Request::Read {
                oid,
                offset: 0,
                len: 100,
                time: None,
            },
        )
        .unwrap()
    {
        Response::Data(data) => assert_eq!(data, b"01234"),
        r => panic!("{r:?}"),
    }
    match d
        .dispatch(
            &user,
            &Request::Read {
                oid,
                offset: 0,
                len: 100,
                time: Some(t1),
            },
        )
        .unwrap()
    {
        Response::Data(data) => assert_eq!(data, b"0123456789"),
        r => panic!("{r:?}"),
    }

    // GetAttr / SetAttr
    d.dispatch(
        &user,
        &Request::SetAttr {
            oid,
            attrs: vec![7, 7],
        },
    )
    .unwrap();
    match d
        .dispatch(&user, &Request::GetAttr { oid, time: None })
        .unwrap()
    {
        Response::Attrs(a) => {
            assert_eq!(a.size, 5);
            assert_eq!(a.opaque, vec![7, 7]);
        }
        r => panic!("{r:?}"),
    }
    match d
        .dispatch(
            &user,
            &Request::GetAttr {
                oid,
                time: Some(t1),
            },
        )
        .unwrap()
    {
        Response::Attrs(a) => assert_eq!(a.size, 10),
        r => panic!("{r:?}"),
    }

    // ACL family.
    d.dispatch(
        &user,
        &Request::SetAcl {
            oid,
            entry: AclEntry {
                user: UserId(2),
                perm: Perm::READ,
            },
        },
    )
    .unwrap();
    match d
        .dispatch(
            &user,
            &Request::GetAclByUser {
                oid,
                user: UserId(2),
                time: None,
            },
        )
        .unwrap()
    {
        Response::Acl(Some(e)) => assert!(e.perm.includes(Perm::READ)),
        r => panic!("{r:?}"),
    }
    match d
        .dispatch(
            &user,
            &Request::GetAclByIndex {
                oid,
                index: 0,
                time: None,
            },
        )
        .unwrap()
    {
        Response::Acl(Some(e)) => assert_eq!(e.user, UserId(1)),
        r => panic!("{r:?}"),
    }

    // Partition family (with time-based PList/PMount).
    d.dispatch(
        &user,
        &Request::PCreate {
            name: "data".into(),
            oid,
        },
    )
    .unwrap();
    let t2 = d.now();
    d.clock().advance(SimDuration::from_millis(10));
    d.dispatch(
        &user,
        &Request::PDelete {
            name: "data".into(),
        },
    )
    .unwrap();
    match d.dispatch(&user, &Request::PList { time: None }).unwrap() {
        Response::Partitions(p) => assert!(p.is_empty()),
        r => panic!("{r:?}"),
    }
    match d
        .dispatch(&user, &Request::PList { time: Some(t2) })
        .unwrap()
    {
        Response::Partitions(p) => assert_eq!(p.len(), 1),
        r => panic!("{r:?}"),
    }
    match d
        .dispatch(
            &user,
            &Request::PMount {
                name: "data".into(),
                time: Some(t2),
            },
        )
        .unwrap()
    {
        Response::Mounted(m) => assert_eq!(m, oid),
        r => panic!("{r:?}"),
    }

    // Administrative trio: denied for users, allowed with the token.
    for req in [
        Request::SetWindow {
            window: SimDuration::from_days(3),
        },
        Request::Flush {
            from: SimTime::ZERO,
            to: SimTime::from_micros(1),
        },
        Request::FlushO {
            oid,
            from: SimTime::ZERO,
            to: SimTime::from_micros(1),
        },
    ] {
        assert!(
            d.dispatch(&user, &req).is_err(),
            "{req:?} must be admin-only"
        );
        d.dispatch(&admin, &req).unwrap();
    }
    // Delete last.
    d.dispatch(&user, &Request::Delete { oid }).unwrap();

    // Everything above is in the audit log, including the denied admin
    // attempts.
    let records = d.read_audit_records(&admin).unwrap();
    assert!(records.len() >= 20);
    let denied = records.iter().filter(|r| !r.ok).count();
    assert!(denied >= 3, "denied admin attempts audited");
    // All 19 op kinds appear.
    let mut kinds: Vec<u8> = records.iter().map(|r| r.op as u8).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), 19, "all Table 1 operations audited");
    let _ = OpKind::Create; // type reachable from the umbrella test
    let _ = ObjectId(0);
}
