//! Randomized oracle tests for comprehensive versioning — hermetic
//! edition.
//!
//! `tests/version_oracle.rs` holds the proptest variant (shrinking,
//! arbitrary case generation) behind the `proptest-tests` feature,
//! because the hermetic tier-1 build cannot fetch external crates. This
//! file runs the same drive-vs-oracle property on every `cargo test`,
//! generating operation sequences from the in-tree xoshiro256** PRNG
//! (`s4_workloads::Rng`): fixed seeds keep CI deterministic, and
//! `S4_ORACLE_SEED=<n>` adds one operator-chosen case without a rebuild.
//!
//! The op mix and verification mirror the proptest variant: arbitrary
//! create/write/truncate/delete/setattr/sync/tick/compact sequences,
//! then a full cross-product check — every object at every mutation
//! instant must read back exactly what the oracle recorded, across syncs,
//! history compaction, and clean remounts.

use std::collections::HashMap;

use s4_clock::{SimClock, SimDuration, SimTime};
use s4_core::{ClientId, DriveConfig, ObjectId, RequestContext, S4Drive, UserId};
use s4_simdisk::MemDisk;
use s4_workloads::Rng;

#[derive(Debug, Clone)]
enum Op {
    Create,
    Write { obj: usize, offset: u16, len: u16, fill: u8 },
    Truncate { obj: usize, len: u16 },
    Delete { obj: usize },
    SetAttr { obj: usize, attr: u8 },
    Sync,
    Tick { secs: u8 },
    /// Runs the differencing pass; must be invisible to every read.
    Compact,
}

/// Draws one op with the proptest variant's weights
/// (1:4:1:1:1:2:2:1 over the eight variants).
fn draw_op(rng: &mut Rng) -> Op {
    match rng.below(13) {
        0 => Op::Create,
        1..=4 => Op::Write {
            obj: rng.index(6),
            offset: rng.below(12_000) as u16,
            len: rng.range(1, 5_999) as u16,
            fill: rng.below(256) as u8,
        },
        5 => Op::Truncate {
            obj: rng.index(6),
            len: rng.below(12_000) as u16,
        },
        6 => Op::Delete { obj: rng.index(6) },
        7 => Op::SetAttr {
            obj: rng.index(6),
            attr: rng.below(256) as u8,
        },
        8 | 9 => Op::Sync,
        10 | 11 => Op::Tick {
            secs: rng.range(1, 29) as u8,
        },
        _ => Op::Compact,
    }
}

fn gen_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| draw_op(&mut rng)).collect()
}

/// Oracle: full object states snapshotted at every instant a mutation
/// happened.
#[derive(Default, Clone)]
struct OracleObject {
    /// (time, contents, attr, alive); reads use the last state at or
    /// before the query time.
    history: Vec<(SimTime, Vec<u8>, u8, bool)>,
}

impl OracleObject {
    fn at(&self, t: SimTime) -> Option<(&[u8], u8, bool)> {
        self.history
            .iter()
            .rev()
            .find(|(ht, _, _, _)| *ht <= t)
            .map(|(_, d, a, alive)| (d.as_slice(), *a, *alive))
    }
}

fn run_case(ops: Vec<Op>, remount_each: usize) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let mut drive = Some(
        S4Drive::format(
            MemDisk::with_capacity_bytes(96 << 20),
            DriveConfig::small_test(),
            clock.clone(),
        )
        .unwrap(),
    );
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let admin = RequestContext::admin(ClientId(0), 42);

    let mut oids: Vec<ObjectId> = Vec::new();
    let mut oracle: HashMap<u64, OracleObject> = HashMap::new();
    let mut checkpoints: Vec<SimTime> = Vec::new();

    for (i, op) in ops.iter().enumerate() {
        let d = drive.as_ref().unwrap();
        // Mutations at distinct instants keep oracle comparison simple.
        clock.advance(SimDuration::from_millis(1));
        match op {
            Op::Create => {
                let oid = d.op_create(&ctx, None).unwrap();
                oids.push(oid);
                let entry = oracle.entry(oid.0).or_default();
                entry.history.push((d.now(), Vec::new(), 0, true));
            }
            Op::Write { obj, offset, len, fill } if !oids.is_empty() => {
                let oid = oids[obj % oids.len()];
                let o = oracle.get_mut(&oid.0).unwrap();
                let Some((data, attr, alive)) =
                    o.at(SimTime::MAX).map(|(d, a, al)| (d.to_vec(), a, al))
                else {
                    continue;
                };
                if !alive {
                    assert!(d
                        .op_write(&ctx, oid, *offset as u64, &vec![*fill; *len as usize])
                        .is_err());
                    continue;
                }
                let mut data = data;
                let end = *offset as usize + *len as usize;
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[*offset as usize..end].fill(*fill);
                d.op_write(&ctx, oid, *offset as u64, &vec![*fill; *len as usize])
                    .unwrap();
                o.history.push((d.now(), data, attr, true));
            }
            Op::Truncate { obj, len } if !oids.is_empty() => {
                let oid = oids[obj % oids.len()];
                let o = oracle.get_mut(&oid.0).unwrap();
                let Some((data, attr, alive)) =
                    o.at(SimTime::MAX).map(|(d, a, al)| (d.to_vec(), a, al))
                else {
                    continue;
                };
                if !alive {
                    assert!(d.op_truncate(&ctx, oid, *len as u64).is_err());
                    continue;
                }
                let mut data = data;
                data.resize(*len as usize, 0);
                d.op_truncate(&ctx, oid, *len as u64).unwrap();
                o.history.push((d.now(), data, attr, true));
            }
            Op::Delete { obj } if !oids.is_empty() => {
                let oid = oids[obj % oids.len()];
                let o = oracle.get_mut(&oid.0).unwrap();
                let Some((data, attr, alive)) =
                    o.at(SimTime::MAX).map(|(d, a, al)| (d.to_vec(), a, al))
                else {
                    continue;
                };
                if !alive {
                    assert!(d.op_delete(&ctx, oid).is_err());
                    continue;
                }
                d.op_delete(&ctx, oid).unwrap();
                o.history.push((d.now(), data, attr, false));
            }
            Op::SetAttr { obj, attr } if !oids.is_empty() => {
                let oid = oids[obj % oids.len()];
                let o = oracle.get_mut(&oid.0).unwrap();
                let Some((data, _a, alive)) =
                    o.at(SimTime::MAX).map(|(d, a, al)| (d.to_vec(), a, al))
                else {
                    continue;
                };
                if !alive {
                    continue;
                }
                d.op_setattr(&ctx, oid, vec![*attr]).unwrap();
                o.history.push((d.now(), data, *attr, true));
            }
            Op::Sync => {
                d.op_sync(&ctx).unwrap();
            }
            Op::Tick { secs } => {
                clock.advance(SimDuration::from_secs(*secs as u64));
            }
            Op::Compact => {
                d.compact_history().unwrap();
            }
            _ => {}
        }
        checkpoints.push(drive.as_ref().unwrap().now());

        // Periodic remount (clean unmount): everything must survive.
        if remount_each > 0 && i % remount_each == remount_each - 1 {
            let d = drive.take().unwrap();
            let dev = d.unmount().unwrap();
            drive = Some(S4Drive::mount(dev, DriveConfig::small_test(), clock.clone()).unwrap());
        }
    }

    // Final verification: every object at every checkpoint instant.
    let d = drive.as_ref().unwrap();
    d.op_sync(&ctx).unwrap();
    for (&raw_oid, o) in &oracle {
        let oid = ObjectId(raw_oid);
        for &t in &checkpoints {
            let Some((want_data, want_attr, alive)) = o.at(t) else {
                // Object not yet created at t.
                assert!(
                    d.op_getattr(&admin, oid, Some(t)).is_err(),
                    "{oid} should not exist at {t}"
                );
                continue;
            };
            if !alive {
                assert!(
                    d.op_read(&admin, oid, 0, 1 << 16, Some(t)).is_err(),
                    "{oid} deleted at {t} but readable"
                );
                continue;
            }
            let got = d.op_read(&admin, oid, 0, 1 << 16, Some(t)).unwrap();
            assert_eq!(got, want_data, "{oid} contents at {t}");
            let attrs = d.op_getattr(&admin, oid, Some(t)).unwrap();
            assert_eq!(attrs.size, want_data.len() as u64, "{oid} size at {t}");
            // Attr blob is empty until the first SetAttr.
            let want_attr_blob: Vec<u8> = if attrs.opaque.is_empty() {
                Vec::new()
            } else {
                vec![want_attr]
            };
            assert_eq!(attrs.opaque, want_attr_blob, "{oid} attrs at {t}");
        }
    }
}

/// Seeds chosen once, arbitrarily; each is a distinct deterministic case.
const SEEDS: [u64; 6] = [
    0x0000_0000_0000_0001,
    0xDEAD_BEEF_CAFE_F00D,
    0x0123_4567_89AB_CDEF,
    0x5851_F42D_4C95_7F2D,
    0xA5A5_A5A5_5A5A_5A5A,
    0xFFFF_FFFF_FFFF_FFFE,
];

#[test]
fn drive_matches_oracle() {
    for &seed in &SEEDS {
        run_case(gen_ops(seed, 60), 0);
    }
}

#[test]
fn drive_matches_oracle_across_remounts() {
    for &seed in &SEEDS {
        run_case(gen_ops(seed ^ 0x5EED, 40), 12);
    }
}

#[test]
fn drive_matches_oracle_env_seed() {
    // One extra operator-chosen case: S4_ORACLE_SEED=<n> cargo test.
    let seed = std::env::var("S4_ORACLE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x09AC_1E5E_ED00_0000);
    run_case(gen_ops(seed, 60), 0);
    run_case(gen_ops(seed, 40), 12);
}
