//! End-to-end test of the `s4` CLI against a persistent disk image:
//! format, put, time travel, restore, audit — across separate process
//! invocations (each one mounts, operates, and cleanly unmounts).

use std::io::Write as _;
use std::process::{Command, Stdio};

fn s4(args: &[&str], image: &std::path::Path) -> (String, String, bool) {
    let mut full = vec![args[0], image.to_str().unwrap()];
    full.extend(&args[1..]);
    let out = Command::new(env!("CARGO_BIN_EXE_s4"))
        .args(&full)
        .output()
        .expect("spawn s4");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

fn s4_stdin(args: &[&str], image: &std::path::Path, input: &[u8]) -> (String, bool) {
    let mut full = vec![args[0], image.to_str().unwrap()];
    full.extend(&args[1..]);
    let mut child = Command::new(env!("CARGO_BIN_EXE_s4"))
        .args(&full)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn s4");
    child.stdin.as_mut().unwrap().write_all(input).unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        out.status.success(),
    )
}

#[test]
fn cli_versioning_workflow_across_invocations() {
    let dir = std::env::temp_dir().join(format!("s4-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let image = dir.join("disk.s4");

    // format
    let (_out, err, ok) = s4(&["format", "64"], &image);
    assert!(ok, "format failed: {err}");

    // put v1
    let (_out, ok) = s4_stdin(&["put", "notes.txt"], &image, b"original contents");
    assert!(ok);

    // capture the image's simulated time
    let (now_out, _, ok) = s4(&["now"], &image);
    assert!(ok);
    let t1 = now_out.trim().trim_end_matches('s').to_string();

    // overwrite with v2
    let (_out, ok) = s4_stdin(&["put", "notes.txt"], &image, b"tampered!");
    assert!(ok);

    // current cat shows v2
    let (cat_now, _, ok) = s4(&["cat", "notes.txt"], &image);
    assert!(ok);
    assert_eq!(cat_now, "tampered!");

    // time-travel cat shows v1
    let (cat_old, err, ok) = s4(&["cat", "notes.txt", "--at", &t1], &image);
    assert!(ok, "cat --at failed: {err}");
    assert_eq!(cat_old, "original contents");

    // ls shows the file with v2's size
    let (ls_out, _, ok) = s4(&["ls"], &image);
    assert!(ok);
    assert!(ls_out.contains("notes.txt"));
    assert!(ls_out.contains("9"), "size of v2: {ls_out}");

    // restore to v1; current cat now shows v1
    let (_out, err, ok) = s4(&["restore", "notes.txt", &t1], &image);
    assert!(ok, "restore failed: {err}");
    let (cat_restored, _, ok) = s4(&["cat", "notes.txt"], &image);
    assert!(ok);
    assert_eq!(cat_restored, "original contents");

    // rm works, and the file is gone from ls
    let (_out, _, ok) = s4(&["rm", "notes.txt"], &image);
    assert!(ok);
    let (ls_after, _, ok) = s4(&["ls"], &image);
    assert!(ok);
    assert!(!ls_after.contains("notes.txt"));

    // audit names the operations across all sessions
    let (audit_out, audit_err, ok) = s4(&["audit"], &image);
    assert!(ok);
    assert!(audit_out.contains("Write"), "audit: {audit_out}");
    assert!(audit_out.contains("Delete"));
    assert!(audit_err.contains("records"));

    // stats serves the metrics exposition and the flight-recorder tail
    // persisted by the earlier invocations.
    let (stats_out, stats_err, ok) = s4(&["stats"], &image);
    assert!(ok, "stats failed: {stats_err}");
    for needle in [
        "s4_rpc_latency_us{quantile=\"0.99\"}",
        "s4_history_pool_occupancy",
        "s4_detection_window_headroom_days",
    ] {
        assert!(stats_out.contains(needle), "stats missing {needle}");
    }
    assert!(
        stats_err.contains("flight recorder"),
        "stats tail: {stats_err}"
    );
    assert!(stats_err.contains("ok=true"), "traces span sessions: {stats_err}");
    let (json_out, _, ok) = s4(&["stats", "--json"], &image);
    assert!(ok);
    assert!(json_out.starts_with('{') && json_out.contains("\"histograms\""));

    // unknown command fails politely
    let (_, err, ok) = s4(&["frobnicate"], &image);
    assert!(!ok);
    assert!(err.contains("unknown command"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `s4 reshard`: double a two-image array onto two fresh images and
/// verify the split routing and every object digest from a remount.
#[test]
fn cli_reshard_doubles_an_array() {
    use s4_array::{ArrayConfig, S4Array};
    use s4_clock::{SimClock, SimDuration};
    use s4_core::{ClientId, DriveConfig, Request, RequestContext, Response, UserId};
    use s4_simdisk::FileDisk;

    let dir = std::env::temp_dir().join(format!("s4-cli-reshard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let img = |n: &str| dir.join(n);
    let admin = RequestContext::admin(ClientId(0), DriveConfig::default().admin_token);

    // Build a 2x1 array image set with a synced population.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = ["a0.s4", "a1.s4"]
        .iter()
        .map(|n| FileDisk::create(img(n), 64 * 2048).unwrap())
        .collect();
    let cfg = ArrayConfig {
        mirrors: 1,
        ..ArrayConfig::default()
    };
    let a = S4Array::format(devices, DriveConfig::default(), cfg, clock).unwrap();
    let ctx = RequestContext::user(UserId(5), ClientId(2));
    let mut digests = Vec::new();
    for i in 0..12u64 {
        let oid = match a.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        a.dispatch(&ctx, &Request::Write { oid, offset: 0, data: vec![i as u8; 40] })
            .unwrap();
        digests.push((oid, 0u64));
    }
    a.dispatch(&ctx, &Request::Sync).unwrap();
    for (oid, d) in digests.iter_mut() {
        let s = a.shard_index_of(*oid);
        *d = a.shard_drive(s).object_digest(&admin, *oid).unwrap();
    }
    a.unmount().unwrap();

    // The CLI splits both residue classes onto fresh images.
    let out = Command::new(env!("CARGO_BIN_EXE_s4"))
        .arg("reshard")
        .args([img("a0.s4"), img("a1.s4")])
        .arg("--targets")
        .args([img("b0.s4"), img("b1.s4")])
        .output()
        .expect("spawn s4");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "reshard failed: {stderr}");
    assert!(stdout.contains("slot 0 -> 2"), "{stdout}");
    assert!(stdout.contains("slot 1 -> 3"), "{stdout}");
    assert!(stdout.contains("base=4"), "{stdout}");

    // Remount all four images: doubled epoch, objects in their doubled
    // classes, digests untouched by the migration.
    let devices = ["a0.s4", "a1.s4", "b0.s4", "b1.s4"]
        .iter()
        .map(|n| FileDisk::open(img(n)).unwrap())
        .collect();
    let (a2, _) = S4Array::mount(devices, DriveConfig::default(), cfg, SimClock::new()).unwrap();
    assert_eq!(a2.epoch().base, 4);
    for (oid, d) in &digests {
        let s = a2.shard_index_of(*oid);
        assert_eq!(a2.shard_slot(s), (oid.0 % 4) as usize);
        assert_eq!(a2.shard_drive(s).object_digest(&admin, *oid).unwrap(), *d);
    }
    a2.unmount().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// `s4 trace`: a traced cross-shard batch on a two-image array shows up
/// in the listing, renders as one causal tree by id, and ranks under
/// `--slowest` — all from a cold CLI mount of the persisted images.
#[test]
fn cli_trace_assembles_across_invocations() {
    use s4_array::{ArrayConfig, S4Array};
    use s4_clock::{SimClock, SimDuration};
    use s4_core::{ClientId, DriveConfig, Request, RequestContext, Response, TraceCtx, UserId};
    use s4_simdisk::FileDisk;

    let dir = std::env::temp_dir().join(format!("s4-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let img = |n: &str| dir.join(n);

    // Build a 2x1 array with one object per shard and run a traced
    // cross-shard atomic batch under a known id.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = ["t0.s4", "t1.s4"]
        .iter()
        .map(|n| FileDisk::create(img(n), 64 * 2048).unwrap())
        .collect();
    let cfg = ArrayConfig {
        mirrors: 1,
        ..ArrayConfig::default()
    };
    let a = S4Array::format(devices, DriveConfig::default(), cfg, clock).unwrap();
    let ctx = RequestContext::user(UserId(5), ClientId(2));
    let mut oids = [None, None];
    while oids.iter().any(Option::is_none) {
        let oid = match a.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        oids[a.shard_index_of(oid)].get_or_insert(oid);
    }
    let stamped = ctx.with_trace(TraceCtx {
        trace_id: 0xBEEF,
        origin: 0,
        phase: 0,
    });
    let reqs = oids
        .iter()
        .map(|o| Request::Write {
            oid: o.unwrap(),
            offset: 0,
            data: b"cli-traced".to_vec(),
        })
        .collect();
    a.dispatch(&stamped, &Request::Batch(reqs)).unwrap();
    a.dispatch(&ctx, &Request::Sync).unwrap();
    for s in 0..2 {
        a.shard_drive(s).force_anchor().unwrap();
    }
    a.unmount().unwrap();

    let run = |extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_s4"))
            .arg("trace")
            .args([img("t0.s4"), img("t1.s4")])
            .args(extra)
            .output()
            .expect("spawn s4");
        assert!(
            out.status.success(),
            "trace {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    // Listing: the batch's id appears with both shards joined.
    let listing = run(&[]);
    assert!(listing.contains("0x000000000000beef"), "{listing}");
    assert!(listing.contains("2 shard(s)"), "{listing}");

    // By id: one rendered tree with both protocol phases.
    let tree = run(&["0xbeef"]);
    assert!(tree.starts_with("trace 0x000000000000beef"), "{tree}");
    assert!(tree.contains("phase prepare"), "{tree}");
    assert!(tree.contains("phase decide"), "{tree}");
    assert!(tree.contains("shard 1"), "{tree}");

    // --slowest renders at least the batch's tree.
    let slowest = run(&["--slowest", "1"]);
    assert!(slowest.starts_with("trace 0x"), "{slowest}");

    std::fs::remove_dir_all(&dir).ok();
}
