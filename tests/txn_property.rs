// Hermetic-build gate: needs the external `proptest` crate. Re-add
// `proptest = "1"` to [dev-dependencies] and run
// `cargo test --features proptest-tests` to enable.
#![cfg(feature = "proptest-tests")]

//! Property-based commit-or-rollback equivalence for cross-shard
//! atomic batches (the shrinking variant of
//! `tests/txn_property_hermetic.rs` — the model is identical, the
//! cases are proptest-drawn and minimized on failure).
//!
//! For arbitrary multi-shard batch shapes — random mixes of writes,
//! truncates, and creates, some poisoned with a guaranteed-failing
//! sub-request — the array must land exactly where an in-memory oracle
//! says: a clean batch applies every sub-request, a poisoned one
//! applies none on any shard, and the equivalence survives a clean
//! unmount/remount.

use std::collections::BTreeMap;

use proptest::prelude::*;

use s4_array::{ArrayConfig, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, ObjectId, Request, RequestContext, Response, UserId};
use s4_simdisk::MemDisk;

const SHARDS: usize = 2;
const POOL: usize = 6;

/// One sub-request shape; `obj` indexes the pre-created pool.
#[derive(Debug, Clone)]
enum OpShape {
    Write { obj: usize, offset: u8, len: u8, fill: u8 },
    Truncate { obj: usize, len: u8 },
    Create,
    /// A write aimed at an object that does not exist on `shard` —
    /// guaranteed to fail that shard's prepare and poison the batch.
    Poison { shard: usize },
}

fn op_strategy() -> impl Strategy<Value = OpShape> {
    prop_oneof![
        5 => (0usize..POOL, 0u8..64, 1u8..32, any::<u8>())
            .prop_map(|(obj, offset, len, fill)| OpShape::Write { obj, offset, len, fill }),
        2 => (0usize..POOL, 0u8..96).prop_map(|(obj, len)| OpShape::Truncate { obj, len }),
        2 => Just(OpShape::Create),
        1 => (0usize..SHARDS).prop_map(|shard| OpShape::Poison { shard }),
    ]
}

fn batch_strategy() -> impl Strategy<Value = Vec<OpShape>> {
    proptest::collection::vec(op_strategy(), 2..7)
}

fn write_req(oid: ObjectId, offset: u64, data: Vec<u8>) -> Request {
    Request::Write { oid, offset, data }
}

fn apply_write(content: &mut Vec<u8>, offset: usize, data: &[u8]) {
    let end = offset + data.len();
    if content.len() < end {
        content.resize(end, 0);
    }
    content[offset..end].copy_from_slice(data);
}

fn run_case(batches: Vec<Vec<OpShape>>) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..SHARDS)
        .map(|_| MemDisk::with_capacity_bytes(64 << 20))
        .collect();
    let a = S4Array::format(
        devices,
        DriveConfig::small_test(),
        ArrayConfig::default(),
        clock,
    )
    .unwrap();
    let ctx = RequestContext::user(UserId(1), ClientId(1));

    // Pre-create the pool, alternating shards so `obj % POOL` hits both.
    let mut pool: Vec<ObjectId> = Vec::new();
    while pool.len() < POOL {
        match a.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => {
                let want = pool.len() % SHARDS;
                if oid.0 as usize % SHARDS == want {
                    pool.push(oid);
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // The oracle: current contents per object id.
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for &oid in &pool {
        oracle.insert(oid.0, Vec::new());
    }
    let (mut committed, mut aborted) = (0u64, 0u64);

    for shapes in &batches {
        let mut reqs: Vec<Request> = Vec::new();
        let mut poisoned = false;
        for shape in shapes {
            match shape {
                OpShape::Write { obj, offset, len, fill } => {
                    let oid = pool[obj % POOL];
                    reqs.push(write_req(oid, *offset as u64, vec![*fill; *len as usize]));
                }
                OpShape::Truncate { obj, len } => {
                    let oid = pool[obj % POOL];
                    reqs.push(Request::Truncate {
                        oid,
                        len: *len as u64,
                    });
                }
                OpShape::Create => reqs.push(Request::Create),
                OpShape::Poison { shard } => {
                    // An id far past the allocator with the target
                    // shard's residue: NoSuchObject at prepare.
                    let oid = ObjectId((1 << 20) + *shard as u64);
                    reqs.push(write_req(oid, 0, vec![0xEE; 4]));
                    poisoned = true;
                }
            }
        }
        // Pin the batch to the two-phase path: make sure both shards
        // participate, whatever the draw produced.
        for (s, &anchor) in pool.iter().enumerate().take(SHARDS) {
            let touches = reqs.iter().any(|r| match r {
                Request::Write { oid, .. } | Request::Truncate { oid, .. } => {
                    oid.0 as usize % SHARDS == s
                }
                _ => false,
            });
            if !touches {
                reqs.push(write_req(anchor, 0, vec![0xAA; 1]));
            }
        }

        let resp = a.dispatch(&ctx, &Request::Batch(reqs.clone()));
        if poisoned {
            assert!(
                resp.is_err(),
                "poisoned batch must fail whole: {resp:?} ({shapes:?})"
            );
            aborted += 1;
            // Oracle untouched: rollback on every shard.
            continue;
        }
        let rs = match resp.expect("clean batch must commit") {
            Response::Batch(rs) => rs,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(rs.len(), reqs.len(), "every slot answered");
        committed += 1;
        // Commit: apply every sub-request to the oracle, in order,
        // resolving Created ids from the response slots.
        for (req, r) in reqs.iter().zip(&rs) {
            match (req, r) {
                (Request::Write { oid, offset, data }, Response::Ok) => {
                    let c = oracle.get_mut(&oid.0).expect("write to known object");
                    apply_write(c, *offset as usize, data);
                }
                (Request::Truncate { oid, len }, Response::Ok) => {
                    let c = oracle.get_mut(&oid.0).expect("truncate of known object");
                    c.resize(*len as usize, 0);
                }
                (Request::Create, Response::Created(oid)) => {
                    oracle.insert(oid.0, Vec::new());
                }
                (req, r) => panic!("unexpected slot {r:?} for {req:?}"),
            }
        }
    }

    let verify = |a: &S4Array<MemDisk>, what: &str| {
        for (&oid, content) in &oracle {
            let got = match a
                .dispatch(
                    &ctx,
                    &Request::Read {
                        oid: ObjectId(oid),
                        offset: 0,
                        len: 4096,
                        time: None,
                    },
                )
                .unwrap()
            {
                Response::Data(d) => d,
                other => panic!("unexpected response {other:?}"),
            };
            assert_eq!(&got, content, "{what}: object {oid} diverged from oracle");
        }
        for s in 0..SHARDS {
            assert!(
                a.shard_drive(s).txn_in_doubt().is_empty(),
                "{what}: shard {s} in doubt"
            );
        }
    };
    verify(&a, "live");
    assert!(
        a.txn_status_text()
            .starts_with(&format!("committed={committed} aborted={aborted}")),
        "status: {} (want committed={committed} aborted={aborted})",
        a.txn_status_text()
    );

    let devices = a.unmount().unwrap();
    let (a2, _) = S4Array::mount(
        devices,
        DriveConfig::small_test(),
        ArrayConfig::default(),
        SimClock::new(),
    )
    .unwrap();
    verify(&a2, "remounted");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 400,
        .. ProptestConfig::default()
    })]

    #[test]
    fn batches_commit_or_roll_back_like_the_oracle(
        batches in proptest::collection::vec(batch_strategy(), 1..30)
    ) {
        run_case(batches);
    }
}
