//! §3.3 end to end: history-pool space-exhaustion attacks and the
//! drive's hybrid answer — throttle the abuser, keep serving everyone
//! else, never evict history.

use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, S4Error, ThrottleConfig, UserId};
use s4_simdisk::MemDisk;

fn drive_with_throttle() -> S4Drive<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let config = DriveConfig {
        throttle: ThrottleConfig {
            enabled: true,
            pressure_threshold: 0.05, // engage almost immediately
            budget_bytes_per_sec: 64 * 1024,
            penalty_ns_per_excess_byte: 2_000,
            max_penalty: SimDuration::from_millis(200),
        },
        ..DriveConfig::small_test()
    };
    S4Drive::format(MemDisk::with_capacity_bytes(16 << 20), config, clock).unwrap()
}

#[test]
fn abuser_is_slowed_but_victims_are_not() {
    let d = drive_with_throttle();
    let abuser = RequestContext::user(UserId(6), ClientId(66));
    let victim = RequestContext::user(UserId(1), ClientId(1));

    let a_obj = d.op_create(&abuser, None).unwrap();
    let v_obj = d.op_create(&victim, None).unwrap();

    // Build some pool pressure.
    for _ in 0..40 {
        d.op_write(&abuser, a_obj, 0, &[0xEE; 32 * 1024]).unwrap();
    }
    d.op_sync(&abuser).unwrap();
    assert!(d.utilization() > 0.05, "pressure established");

    // Flood from the abuser; measure the penalty it accrues.
    let before = d.stats().snapshot().throttle_penalty_us;
    let t0 = d.now();
    for _ in 0..20 {
        d.op_write(&abuser, a_obj, 0, &[0xEE; 64 * 1024]).unwrap();
    }
    let abuser_elapsed = d.now() - t0;
    let after = d.stats().snapshot().throttle_penalty_us;
    assert!(
        after > before,
        "flooding under pressure must accrue penalties"
    );

    // A well-behaved client's small writes stay fast.
    let t1 = d.now();
    for _ in 0..20 {
        d.op_write(&victim, v_obj, 0, b"small legitimate write")
            .unwrap();
    }
    let victim_elapsed = d.now() - t1;
    assert!(
        abuser_elapsed.as_micros() > victim_elapsed.as_micros() * 5,
        "abuser {abuser_elapsed:?} vs victim {victim_elapsed:?}"
    );
}

#[test]
fn pool_exhaustion_is_an_error_not_history_eviction() {
    // Fill a tiny drive to exhaustion: S4 must refuse further writes
    // (the third "flawed approach" the paper rejects is denial of
    // service, but it explicitly prefers it over silently reclaiming
    // history) and every previously written version must remain
    // readable.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(8 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let oid = d.op_create(&ctx, None).unwrap();

    let mut versions = Vec::new();
    let payload = vec![0xABu8; 64 * 1024];
    let err = loop {
        match d.op_write(&ctx, oid, 0, &payload) {
            Ok(()) => {
                versions.push(d.now());
                clock.advance(SimDuration::from_millis(10));
                if d.op_sync(&ctx).is_err() {
                    break S4Error::PoolFull;
                }
            }
            Err(e) => break e,
        }
    };
    assert_eq!(err, S4Error::PoolFull);
    assert!(
        versions.len() > 10,
        "wrote {} versions first",
        versions.len()
    );

    // All successfully synced versions remain readable — nothing was
    // evicted to make room.
    for (i, t) in versions.iter().enumerate().take(versions.len() - 1) {
        let data = d.op_read(&ctx, oid, 0, 16, Some(*t));
        assert!(data.is_ok(), "version {i} lost after pool exhaustion");
    }
}
