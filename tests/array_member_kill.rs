//! End-to-end member-kill drill: 8 threaded TCP clients hammer a
//! mirrored 4×2 array while one replica's device dies mid-run. The
//! clients must see zero errors, the degraded state must surface
//! through the stats wire (`s4_array_degraded` gauge) and the
//! tamper-evident alert stream, an online resync must restore full
//! redundancy, and the merged audit stream — live and again after a
//! full unmount/remount cycle — must stay a serializable interleaving
//! of what the clients issued.

use std::sync::Arc;

use s4_array::{ArrayConfig, MemberState, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    AuditRecord, ClientId, DriveConfig, ObjectId, OpKind, Request, RequestContext, Response,
    UserId,
};
use s4_fs::{TcpServerHandle, TcpTransport, Transport};
use s4_simdisk::{FaultPlan, FaultyDisk, MemDisk, RequestClassMask};

const CLIENTS: u32 = 8;
const WRITES_PER_CLIENT: u64 = 40;
const SHARDS: usize = 4;
const MIRRORS: usize = 2;

type Disk = FaultyDisk<MemDisk>;

fn clean_disk() -> Disk {
    FaultyDisk::new(MemDisk::with_capacity_bytes(64 << 20), FaultPlan::none())
}

fn array_cfg() -> ArrayConfig {
    ArrayConfig {
        mirrors: MIRRORS,
        ..ArrayConfig::default()
    }
}

fn unwrap_arc<T>(mut arc: Arc<T>) -> T {
    for _ in 0..2000 {
        match Arc::try_unwrap(arc) {
            Ok(v) => return v,
            Err(a) => {
                arc = a;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    }
    panic!("server threads still hold the handler");
}

/// 8 client threads: create one object each, write a recognizable
/// sequence, sync every few writes (syncs force the replicas' disk
/// traffic, which is what kills the victim mid-run). Every call must
/// succeed — a dying mirror is the array's problem, not the client's.
fn hammer(server: &TcpServerHandle) -> Vec<ObjectId> {
    let addr = server.addr();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let t = TcpTransport::connect(addr).unwrap();
                let ctx = RequestContext::user(UserId(100 + c), ClientId(c));
                let oid = match t.call(&ctx, &Request::Create).unwrap() {
                    Response::Created(oid) => oid,
                    other => panic!("unexpected response {other:?}"),
                };
                for seq in 0..WRITES_PER_CLIENT {
                    t.call(
                        &ctx,
                        &Request::Write {
                            oid,
                            offset: seq,
                            data: vec![c as u8; 8],
                        },
                    )
                    .unwrap();
                    if seq % 8 == 7 {
                        t.call(&ctx, &Request::Sync).unwrap();
                    }
                }
                t.call(&ctx, &Request::Sync).unwrap();
                oid
            })
        })
        .collect();
    threads.into_iter().map(|t| t.join().unwrap()).collect()
}

/// Same serializability bar as the healthy-array stress test: per
/// client, the audited writes form exactly the issued sequence.
fn check_interleaving(records: &[AuditRecord], oids: &[ObjectId]) {
    for c in 0..CLIENTS {
        let issued: Vec<u64> = records
            .iter()
            .filter(|r| r.client == ClientId(c) && r.op == OpKind::Write)
            .map(|r| {
                assert!(r.ok, "client {c} write denied");
                assert_eq!(r.object, oids[c as usize], "write audited on wrong object");
                r.arg1
            })
            .collect();
        let expect: Vec<u64> = (0..WRITES_PER_CLIENT).collect();
        assert_eq!(issued, expect, "client {c} stream not serial");
    }
}

#[test]
fn member_kill_under_tcp_stress_is_invisible_and_resyncable() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));

    // Format clean, then re-arm: shard 0's first replica dies after a
    // handful of post-mount disk writes — mid-run, while the clients
    // are hammering.
    let devices = (0..SHARDS * MIRRORS).map(|_| clean_disk()).collect();
    let a = S4Array::format(devices, DriveConfig::small_test(), array_cfg(), clock.clone())
        .unwrap();
    let devices = a.unmount().unwrap();
    let devices: Vec<Disk> = devices
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            let plan = if i == 0 {
                FaultPlan::member_death_after_requests(
                    5,
                    RequestClassMask::WRITES.union(RequestClassMask::SYNCS),
                )
            } else {
                FaultPlan::none()
            };
            FaultyDisk::new(d.into_inner(), plan)
        })
        .collect();
    let (a, reports) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), clock).unwrap();
    assert_eq!(reports.len(), SHARDS * MIRRORS);
    let array = Arc::new(a);

    let server = TcpServerHandle::serve(array.clone(), "127.0.0.1:0").unwrap();
    let oids = hammer(&server);

    // The kill is visible on the admin plane — and only there: the
    // stats wire shows the degraded shard and the mirror count.
    let stats = TcpTransport::connect(server.addr())
        .unwrap()
        .fetch_stats()
        .unwrap();
    assert!(stats.contains("s4_array_shards 4"), "{stats}");
    assert!(stats.contains("s4_array_mirrors 2"), "{stats}");
    assert!(stats.contains("s4_array_degraded{shard=\"0\"} 1"), "{stats}");
    server.shutdown();

    let a = unwrap_arc(array);
    assert_eq!(a.member_states()[0][0], MemberState::Dead);
    assert_eq!(a.member_states()[0][1], MemberState::InSync);
    assert!(a.shard_degraded(0));

    let admin = RequestContext::admin(ClientId(0), 42);
    let degraded_alert = a
        .read_alerts_merged(&admin)
        .unwrap()
        .iter()
        .any(|s| s.record.windows(14).any(|w| w == b"array-degraded"));
    assert!(degraded_alert, "degraded alert missing from the merged stream");

    // Online resync onto a fresh device restores full redundancy and
    // the replicas converge object-for-object.
    a.resync_member(0, 0, clean_disk()).unwrap();
    assert!(!a.shard_degraded(0));
    for s in 0..SHARDS {
        let first = a.member_drive(s, 0);
        let second = a.member_drive(s, 1);
        let ids = first.live_object_ids(&admin).unwrap();
        assert_eq!(ids, second.live_object_ids(&admin).unwrap());
        for &oid in &ids {
            assert_eq!(
                first.object_digest(&admin, ObjectId(oid)).unwrap(),
                second.object_digest(&admin, ObjectId(oid)).unwrap(),
                "shard {s} object {oid} diverged"
            );
        }
    }

    // The merged audit stream is still a serializable interleaving…
    let merged: Vec<AuditRecord> = a
        .read_audit_merged(&admin)
        .unwrap()
        .into_iter()
        .map(|r| r.record)
        .collect();
    check_interleaving(&merged, &oids);

    // …and survives a full unmount/remount cycle, rebuilt member
    // included.
    let devices = a.unmount().unwrap();
    let (a2, _) = S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new())
        .unwrap();
    let merged: Vec<AuditRecord> = a2
        .read_audit_merged(&admin)
        .unwrap()
        .into_iter()
        .map(|r| r.record)
        .collect();
    check_interleaving(&merged, &oids);
    for (i, &oid) in oids.iter().enumerate() {
        let ctx = RequestContext::user(UserId(100 + i as u32), ClientId(i as u32));
        match a2
            .dispatch(
                &ctx,
                &Request::Read {
                    oid,
                    offset: 0,
                    len: 8,
                    time: None,
                },
            )
            .unwrap()
        {
            Response::Data(d) => assert_eq!(d, vec![i as u8; 8]),
            other => panic!("unexpected response {other:?}"),
        }
    }
}
