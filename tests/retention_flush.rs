//! Alert/trace object retention (`FlushAlerts` / `FlushTraces`).
//!
//! The alert and flight-recorder objects are append-only and
//! drive-written, so without retention a chatty detector grows them
//! until the history pool fills. The admin retention ops truncate
//! blocks *strictly older* than the detection window: the growth gauge
//! drops, every in-window record survives, outstanding alert cursors
//! stay valid (the stream keeps absolute block numbering), and the op
//! itself is audited like any other request.

use s4_clock::{SimClock, SimDuration};
use s4_core::{
    AlertCursor, AuditObserver, AuditRecord, ClientId, DriveConfig, OpKind, Request,
    RequestContext, Response, S4Drive, UserId,
};
use s4_simdisk::MemDisk;

/// Raises one fat, decodable alert per audited `Write` so the alert
/// object spills blocks quickly (~3 blobs per 4 KiB block). The blob
/// follows the alert wire format's dating convention: severity byte,
/// then the raise time (µs) at bytes `[1..9]`.
struct Noisy;

impl AuditObserver for Noisy {
    fn on_record(&mut self, rec: &AuditRecord) -> Vec<Vec<u8>> {
        if rec.op != OpKind::Write {
            return Vec::new();
        }
        let mut blob = Vec::with_capacity(1200);
        blob.push(2); // severity
        blob.extend_from_slice(&rec.time.as_micros().to_le_bytes());
        blob.resize(1200, 0xAB); // padding payload
        vec![blob]
    }
}

fn gauge(d: &S4Drive<MemDisk>, name: &str) -> f64 {
    d.metrics_text(); // refreshes operational gauges
    d.registry().gauge(name, "").get()
}

fn blob_time(blob: &[u8]) -> u64 {
    u64::from_le_bytes(blob[1..9].try_into().unwrap())
}

#[test]
fn flush_alerts_drops_gauge_and_keeps_in_window_records() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(), // 3600 s detection window
        clock.clone(),
    )
    .unwrap();
    d.register_audit_observer(Box::new(Noisy));
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let admin = RequestContext::admin(ClientId(0), 42);

    let oid = d.op_create(&ctx, None).unwrap();
    let write = |i: u64, data: &[u8]| Request::Write {
        oid,
        offset: i * 8,
        data: data.to_vec(),
    };

    // Phase A: old alerts — enough audited writes to spill several
    // blocks (auditing, and thus detection, runs in the dispatcher).
    for i in 0..30u64 {
        d.dispatch(&ctx, &write(i, b"old-data")).unwrap();
    }
    d.op_sync(&ctx).unwrap();

    // A cursor that has consumed everything so far.
    let mut cursor = AlertCursor::default();
    let seen = d.read_alerts_from(&admin, &mut cursor).unwrap();
    assert!(seen.len() >= 30);

    // Move past the detection window, then raise in-window alerts.
    clock.advance(SimDuration::from_secs(7200));
    for i in 0..6u64 {
        d.dispatch(&ctx, &write(i, b"new-data")).unwrap();
    }
    d.op_sync(&ctx).unwrap();

    let before_blocks = gauge(&d, "s4_alert_object_blocks");
    assert!(before_blocks >= 3.0, "workload too small: {before_blocks}");
    let before = d.read_alerts(&admin).unwrap();
    let cutoff = d.now().as_micros() - SimDuration::from_secs(3600).as_micros();
    let in_window: Vec<&Vec<u8>> = before.iter().filter(|b| blob_time(b) >= cutoff).collect();
    assert!(in_window.len() >= 6);

    // Non-admin callers are refused (and the refusal is audited).
    assert!(d.dispatch(&ctx, &Request::FlushAlerts).is_err());

    let released = match d.dispatch(&admin, &Request::FlushAlerts).unwrap() {
        Response::NewSize(n) => n,
        other => panic!("unexpected response {other:?}"),
    };
    assert!(released >= 3, "expected several expired blocks: {released}");

    // Growth gauge drops by exactly the released block count.
    let after_blocks = gauge(&d, "s4_alert_object_blocks");
    assert_eq!(after_blocks, before_blocks - released as f64);

    // Every in-window alert survives, order preserved, and the
    // surviving stream is a suffix of the original (truncation only
    // removes whole expired blocks from the front).
    let after = d.read_alerts(&admin).unwrap();
    assert!(after.len() < before.len());
    assert_eq!(&before[before.len() - after.len()..], &after[..]);
    for b in &in_window {
        assert!(after.contains(b), "in-window alert lost");
    }

    // The outstanding cursor survives truncation: it only returns the
    // alerts raised after its last poll, with nothing replayed.
    let fresh = d.read_alerts_from(&admin, &mut cursor).unwrap();
    assert_eq!(fresh.len(), before.len() - seen.len());
    assert!(fresh.iter().all(|b| blob_time(b) >= cutoff));

    // Both the denied and the successful retention calls are audited.
    let audit = d.read_audit_records(&admin).unwrap();
    let flushes: Vec<&AuditRecord> = audit
        .iter()
        .filter(|r| r.op == OpKind::FlushAlerts)
        .collect();
    assert_eq!(flushes.len(), 2);
    assert!(!flushes[0].ok, "denied attempt must be audited");
    assert!(flushes[1].ok);

    // A second flush finds nothing expired.
    assert_eq!(d.op_flush_alerts(&admin).unwrap(), 0);

    // The truncation survives a remount.
    let dev = d.unmount().unwrap();
    let d2 = S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap();
    let remounted = d2.read_alerts(&admin).unwrap();
    assert_eq!(remounted, after);
}

#[test]
fn flush_traces_truncates_expired_flight_recorder_blocks() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let d = S4Drive::format(
        MemDisk::with_capacity_bytes(64 << 20),
        DriveConfig::small_test(),
        clock.clone(),
    )
    .unwrap();
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let admin = RequestContext::admin(ClientId(0), 42);

    // Old traces: every dispatched request appends one 68-byte record,
    // so a few hundred requests spill multiple trace blocks.
    let oid = match d.dispatch(&ctx, &Request::Create).unwrap() {
        Response::Created(oid) => oid,
        other => panic!("unexpected response {other:?}"),
    };
    for i in 0..400u64 {
        d.dispatch(
            &ctx,
            &Request::Write {
                oid,
                offset: i % 64,
                data: vec![7u8; 8],
            },
        )
        .unwrap();
    }
    d.dispatch(&ctx, &Request::Sync).unwrap();

    clock.advance(SimDuration::from_secs(7200));
    for _ in 0..10 {
        d.dispatch(
            &ctx,
            &Request::Read {
                oid,
                offset: 0,
                len: 8,
                time: None,
            },
        )
        .unwrap();
    }
    d.dispatch(&ctx, &Request::Sync).unwrap();

    let before_blocks = gauge(&d, "s4_trace_object_blocks");
    assert!(before_blocks >= 4.0, "workload too small: {before_blocks}");
    let cutoff = d.now().as_micros() - SimDuration::from_secs(3600).as_micros();
    let before = d.read_traces(&admin).unwrap();
    let in_window = before.iter().filter(|t| t.time_us >= cutoff).count();
    assert!(in_window >= 11, "reads + sync must be in-window");

    assert!(d.op_flush_traces(&ctx).is_err(), "admin only");
    let released = d.op_flush_traces(&admin).unwrap();
    assert!(released >= 4, "expected expired blocks: {released}");
    assert_eq!(
        gauge(&d, "s4_trace_object_blocks"),
        before_blocks - released as f64
    );

    // The surviving stream is a suffix of the original: seq values are
    // still contiguous within it and every in-window record survives.
    let after = d.read_traces(&admin).unwrap();
    assert_eq!(&before[before.len() - after.len()..], &after[..]);
    assert!(after.iter().filter(|t| t.time_us >= cutoff).count() >= in_window);
    for w in after.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1, "post-retention stream has holes");
    }

    // Audited via the RPC surface too.
    let resp = d.dispatch(&admin, &Request::FlushTraces).unwrap();
    assert_eq!(resp, Response::NewSize(0), "nothing further expired");
    let audit = d.read_audit_records(&admin).unwrap();
    assert!(audit
        .iter()
        .any(|r| r.op == OpKind::FlushTraces && r.ok));
}
