//! Crash-point torture for online resharding: whatever instant the
//! machine dies, a remount must come up routing **wholly in the old
//! epoch or wholly in the new one** — never a hybrid — and every
//! synced object must survive with its digest intact.
//!
//! The split protocol's externally visible states are sampled directly:
//!
//! * crash **during snapshot/catch-up** — no epoch note has changed, so
//!   remounting the original device set must behave as if the split was
//!   never attempted (targets are scratch and are discarded);
//! * crash **after a flip**, both mid-generation (epoch `base=2,
//!   bits=0b01`, five-... six-device remount) and at generation
//!   completion (doubled base) — the persisted note must route the
//!   moved class to its new home;
//! * crash **between per-member note installs** — shard 0's mirrors
//!   disagree about the epoch; mount must pick the highest sequence
//!   number and repair the stale member's partition table.

use s4_array::{is_reserved, ArrayConfig, EpochInfo, S4Array, EPOCH_NOTE_PREFIX};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    ClientId, DriveConfig, ObjectId, Request, RequestContext, Response, S4Drive, UserId,
    PARTITION_OBJECT,
};
use s4_reshard::{split_shard, ReshardConfig};
use s4_simdisk::MemDisk;
use std::collections::BTreeMap;

const MIRRORS: usize = 2;

fn disk() -> MemDisk {
    MemDisk::with_capacity_bytes(64 << 20)
}

fn array_cfg() -> ArrayConfig {
    ArrayConfig {
        mirrors: MIRRORS,
        ..ArrayConfig::default()
    }
}

fn admin() -> RequestContext {
    RequestContext::admin(ClientId(0), 42)
}

fn build(shards: usize) -> S4Array<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..shards * MIRRORS).map(|_| disk()).collect();
    S4Array::format(devices, DriveConfig::small_test(), array_cfg(), clock).unwrap()
}

/// Creates and writes a synced population; returns oid → digest.
fn populate(a: &S4Array<MemDisk>, count: u64) -> BTreeMap<ObjectId, u64> {
    let ctx = RequestContext::user(UserId(9), ClientId(3));
    let mut oids = Vec::new();
    for i in 0..count {
        let oid = match a.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        a.dispatch(
            &ctx,
            &Request::Write {
                oid,
                offset: 0,
                data: vec![i as u8; 32 + (i as usize % 5) * 8],
            },
        )
        .unwrap();
        oids.push(oid);
    }
    a.dispatch(&ctx, &Request::Sync).unwrap();
    oids.iter()
        .map(|&oid| {
            let s = a.shard_index_of(oid);
            (oid, a.shard_drive(s).object_digest(&admin(), oid).unwrap())
        })
        .collect()
}

fn assert_population(a: &S4Array<MemDisk>, digests: &BTreeMap<ObjectId, u64>) {
    for (&oid, &want) in digests {
        let s = a.shard_index_of(oid);
        assert_eq!(
            a.shard_drive(s).object_digest(&admin(), oid).unwrap(),
            want,
            "object {oid:?} damaged across crash"
        );
    }
}

/// Crash in the middle of the migration (snapshot copied, catch-up not
/// finished, no flip): the targets are scratch, so remounting the old
/// device set must come up in the untouched old epoch with every
/// object exactly where it was.
#[test]
fn crash_during_catchup_remounts_wholly_old() {
    let a = build(2);
    let digests = populate(&a, 20);
    let epoch_before = a.epoch();

    // Reproduce split_shard's on-disk state as of mid-migration: the
    // moving class is (partially) exported onto freshly formatted
    // targets, nothing on the sources has changed.
    {
        let src = a.shard_drive(0);
        let drive_cfg = *src.config();
        let tgts: Vec<S4Drive<MemDisk>> = (0..MIRRORS)
            .map(|_| {
                S4Drive::format(disk(), drive_cfg.with_oid_class(4, 2), src.clock().clone())
                    .unwrap()
            })
            .collect();
        let t = src.clock().now();
        let mut copied = 0usize;
        for oid in src.live_object_ids(&admin()).unwrap() {
            if is_reserved(ObjectId(oid)) || oid % 4 != 2 {
                continue;
            }
            if copied.is_multiple_of(2) {
                // "partial": the crash interrupts the copy loop
                let obj = src
                    .reshard_export(&admin(), ObjectId(oid), Some(t))
                    .unwrap()
                    .unwrap();
                for tg in &tgts {
                    tg.reshard_apply(&admin(), &obj).unwrap();
                }
            }
            copied += 1;
        }
        assert!(copied > 0, "moving class unexpectedly empty");
        // tgts drop here: a crash discards the half-built shard
    }

    let devices = a.crash().unwrap();
    assert_eq!(devices.len(), 2 * MIRRORS);
    let (a2, _) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new()).unwrap();
    assert_eq!(a2.epoch(), epoch_before, "epoch moved without a flip");
    assert_eq!(a2.shard_count(), 2);
    assert_population(&a2, &digests);
}

/// Crash right after a flip — first mid-generation (only slot 0 split:
/// three live shards), then after the generation completes (doubled
/// base). Both remounts must route wholly in the new epoch.
#[test]
fn crash_after_flip_remounts_wholly_new() {
    let a = build(2);
    let digests = populate(&a, 20);

    // Split slot 0 only, then crash: the remount set is six devices in
    // dense order (sources 0,1 then target 2), epoch base=2 bits=0b01.
    let r = split_shard(&a, 0, (0..MIRRORS).map(|_| disk()).collect(), ReshardConfig::default())
        .unwrap();
    assert_eq!(r.target_slot, 2);
    let devices = a.crash().unwrap();
    assert_eq!(devices.len(), 3 * MIRRORS);
    let (a2, _) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new()).unwrap();
    assert_eq!(a2.epoch(), EpochInfo { seq: 2, base: 2, bits: 0b01 });
    assert_eq!(a2.shard_count(), 3);
    for &oid in digests.keys() {
        let slot = a2.shard_slot(a2.shard_index_of(oid));
        let want = if oid.0 % 4 == 2 { 2 } else { (oid.0 % 2) as usize };
        assert_eq!(slot, want, "hybrid routing for {oid:?} after crash");
    }
    assert_population(&a2, &digests);

    // Finish the generation on the remounted array, crash again: the
    // epoch collapses to base=4 and routes by `oid mod 4`.
    split_shard(&a2, 1, (0..MIRRORS).map(|_| disk()).collect(), ReshardConfig::default()).unwrap();
    let devices = a2.crash().unwrap();
    assert_eq!(devices.len(), 4 * MIRRORS);
    let (a3, _) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new()).unwrap();
    assert_eq!(a3.epoch(), EpochInfo { seq: 3, base: 4, bits: 0 });
    assert_eq!(a3.shard_count(), 4);
    for &oid in digests.keys() {
        assert_eq!(a3.shard_slot(a3.shard_index_of(oid)), (oid.0 % 4) as usize);
    }
    assert_population(&a3, &digests);
}

/// Crash between the per-member epoch-note installs: shard 0's two
/// mirrors persist different epochs. Mount must elect the highest
/// sequence number, route by it, and repair the stale member's
/// partition table so a later mount sees no divergence.
#[test]
fn crash_between_note_installs_repairs_divergent_member() {
    let a = build(2);
    let digests = populate(&a, 20);

    split_shard(&a, 0, (0..MIRRORS).map(|_| disk()).collect(), ReshardConfig::default())
        .unwrap();
    let new_epoch = a.epoch();
    assert_eq!(new_epoch, EpochInfo { seq: 2, base: 2, bits: 0b01 });

    // Rewind member 1 of shard 0 to the pre-flip note, exactly the
    // state a crash leaves if it lands between the two installs.
    {
        let stale = a.member_drive(0, 1);
        stale.op_pdelete(&admin(), &new_epoch.note_name()).unwrap();
        stale
            .op_pcreate(&admin(), &EpochInfo::initial(2).note_name(), PARTITION_OBJECT)
            .unwrap();
        stale.force_anchor().unwrap();
    }

    let devices = a.crash().unwrap();
    let (a2, _) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new()).unwrap();
    // Highest seq wins: the flip is not lost to the stale mirror.
    assert_eq!(a2.epoch(), new_epoch);
    assert_eq!(a2.shard_count(), 3);
    assert_population(&a2, &digests);

    // The stale member was repaired in place: both mirrors now carry
    // exactly the winning note.
    for k in 0..MIRRORS {
        let notes: Vec<String> = a2
            .member_drive(0, k)
            .op_plist(&admin(), None)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .filter(|n| n.starts_with(EPOCH_NOTE_PREFIX))
            .collect();
        assert_eq!(notes, vec![new_epoch.note_name()], "member {k} not repaired");
    }

    // And the repair is durable: one more crash/mount pair agrees.
    let devices = a2.crash().unwrap();
    let (a3, _) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new()).unwrap();
    assert_eq!(a3.epoch(), new_epoch);
    assert_population(&a3, &digests);
}
