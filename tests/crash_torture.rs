//! Crash-consistency torture campaigns (see `crates/torture`).
//!
//! The bounded campaign is the CI gate: a fixed seed, crash points
//! sampled down to ≤ 64, two torn-sector patterns per point (rotating
//! through prefix / interleaved / holed tears so the whole mix is
//! exercised without growing the replay budget). The exhaustive
//! campaign (`--ignored`) replays *every* countable device request of a
//! 500-op workload.
//!
//! Every replay asserts the five recovery invariants — durability of
//! everything the last completed sync covered, audit-log prefix
//! integrity, remount idempotence, post-recovery retention, and
//! flight-recorder trace-stream prefix integrity — so these tests pass
//! only if recovery is correct at every crash point visited.

use s4_simdisk::TornPattern;
use s4_torture::{
    enumerate, enumerate_cleaner_between, enumerate_recovery_crashes, golden_run,
    torture_crash_during_recovery, torture_crash_point, TortureConfig,
};

/// Fixed CI seed; campaigns are pure functions of it.
const SEED: u64 = 0xB0A710AD;

#[test]
fn bounded_crash_enumeration_holds_invariants() {
    let cfg = TortureConfig::bounded(SEED);
    let summary = enumerate(&cfg);
    assert!(
        summary.crash_points >= 16,
        "workload too small to be interesting: {summary:?}"
    );
    assert!(summary.crash_points <= 64, "bounded cap violated: {summary:?}");
    assert_eq!(summary.replays, summary.crash_points * cfg.replays_per_point());
    // Every sampled crash point is inside the workload, so every replay
    // must actually lose power.
    assert_eq!(summary.died, summary.replays, "some faults never fired: {summary:?}");
}

#[test]
fn bounded_campaign_second_seed() {
    // A second seed guards against the first being accidentally benign.
    let summary = enumerate(&TortureConfig::bounded(0x5EED_0002));
    assert_eq!(summary.died, summary.replays, "{summary:?}");
}

#[test]
fn golden_run_validates_oracle_and_audit_predictor() {
    let g = golden_run(&TortureConfig::bounded(SEED));
    assert!(g.domain.1 > g.domain.0);
    assert!(g.versions > 0);
    assert!(g.audit_records > 0);
}

#[test]
fn crash_on_first_workload_request() {
    // The earliest possible workload crash: nothing synced yet, so
    // recovery must fall back to the format-time anchor.
    let cfg = TortureConfig::bounded(SEED);
    let g = golden_run(&cfg);
    let outcome = torture_crash_point(&cfg, g.domain.0, TornPattern::Prefix(0));
    assert!(outcome.died);
}

#[test]
fn cleaner_between_crash_and_remount_holds_invariants() {
    // A maintenance pass (cleaner + compaction + anchor) between the
    // crash and the final remount must neither eat windowed versions
    // nor break remount idempotence. Smaller sample than the plain
    // campaign: each point costs three recoveries plus two cleans.
    let cfg = TortureConfig {
        max_crash_points: Some(12),
        patterns_per_point: Some(1),
        ..TortureConfig::bounded(SEED)
    };
    let summary = enumerate_cleaner_between(&cfg);
    assert!(summary.crash_points >= 8, "{summary:?}");
    assert_eq!(summary.died, summary.replays, "some faults never fired: {summary:?}");
    assert!(summary.versions_checked > 0, "{summary:?}");
}

#[test]
fn crash_during_recovery_holds_invariants() {
    // Second power loss inside the recovery replay: sample three
    // first-crash points across the domain and a handful of
    // second-crash points inside each recovery.
    let cfg = TortureConfig::bounded(SEED);
    let summary = enumerate_recovery_crashes(&cfg, 3, Some(6));
    assert_eq!(summary.first_points, 3, "{summary:?}");
    assert!(
        summary.recovery_requests > 0,
        "recovery issued no device requests: {summary:?}"
    );
    // Every sampled second crash lands inside the recovery's request
    // stream, so every one must abort the interrupted mount.
    assert!(summary.second_replays >= 3, "{summary:?}");
    assert_eq!(summary.second_died, summary.second_replays, "{summary:?}");
}

#[test]
fn recovery_crash_on_first_recovery_read() {
    // The nastiest double crash: the workload dies mid-stream, then the
    // very first device request of the recovery replay dies too.
    let cfg = TortureConfig::bounded(SEED);
    let g = golden_run(&cfg);
    let mid = g.domain.0 + (g.domain.1 - g.domain.0) / 2;
    let o = torture_crash_during_recovery(&cfg, mid, TornPattern::Prefix(0), Some(1));
    assert!(o.died, "first fault must fire");
    assert_eq!(o.recovery_writes, 0, "recovery must be read-only");
    assert!(o.second_died >= 1, "second fault must abort the mount: {o:?}");
}

#[test]
#[ignore = "exhaustive: replays every crash point of a 500-op workload; run with --ignored"]
fn exhaustive_crash_enumeration_holds_invariants() {
    let cfg = TortureConfig::exhaustive(SEED);
    let summary = enumerate(&cfg);
    let domain = (summary.domain.1 - summary.domain.0) as usize;
    assert_eq!(
        summary.crash_points, domain,
        "exhaustive mode must visit every countable request: {summary:?}"
    );
    assert_eq!(summary.died, summary.replays, "{summary:?}");
    // A 500-op workload crosses the anchor interval, so the domain must
    // include sync-class (anchor barrier) crash points.
    assert!(
        summary.sync_points > 0,
        "exhaustive workload never hit the anchor barrier: {summary:?}"
    );
}

#[test]
#[ignore = "exhaustive: cleaner pass at every crash point of a 500-op workload; run with --ignored"]
fn exhaustive_cleaner_between_holds_invariants() {
    let summary = enumerate_cleaner_between(&TortureConfig::exhaustive(SEED));
    assert_eq!(summary.died, summary.replays, "{summary:?}");
}

#[test]
#[ignore = "exhaustive: every second-crash point inside recovery at 16 first points; run with --ignored"]
fn exhaustive_crash_during_recovery_holds_invariants() {
    let summary = enumerate_recovery_crashes(&TortureConfig::exhaustive(SEED), 16, None);
    assert_eq!(summary.second_died, summary.second_replays, "{summary:?}");
}
