//! Crash-consistency torture campaigns (see `crates/torture`).
//!
//! The bounded campaign is the CI gate: a fixed seed, crash points
//! sampled down to ≤ 64, two torn-sector patterns per point (rotating
//! through prefix / interleaved / holed tears so the whole mix is
//! exercised without growing the replay budget). The exhaustive
//! campaign (`--ignored`) replays *every* countable device request of a
//! 500-op workload.
//!
//! Every replay asserts the five recovery invariants — durability of
//! everything the last completed sync covered, audit-log prefix
//! integrity, remount idempotence, post-recovery retention, and
//! flight-recorder trace-stream prefix integrity — so these tests pass
//! only if recovery is correct at every crash point visited.

use s4_simdisk::TornPattern;
use s4_torture::{enumerate, golden_run, torture_crash_point, TortureConfig};

/// Fixed CI seed; campaigns are pure functions of it.
const SEED: u64 = 0xB0A710AD;

#[test]
fn bounded_crash_enumeration_holds_invariants() {
    let cfg = TortureConfig::bounded(SEED);
    let summary = enumerate(&cfg);
    assert!(
        summary.crash_points >= 16,
        "workload too small to be interesting: {summary:?}"
    );
    assert!(summary.crash_points <= 64, "bounded cap violated: {summary:?}");
    assert_eq!(summary.replays, summary.crash_points * cfg.replays_per_point());
    // Every sampled crash point is inside the workload, so every replay
    // must actually lose power.
    assert_eq!(summary.died, summary.replays, "some faults never fired: {summary:?}");
}

#[test]
fn bounded_campaign_second_seed() {
    // A second seed guards against the first being accidentally benign.
    let summary = enumerate(&TortureConfig::bounded(0x5EED_0002));
    assert_eq!(summary.died, summary.replays, "{summary:?}");
}

#[test]
fn golden_run_validates_oracle_and_audit_predictor() {
    let g = golden_run(&TortureConfig::bounded(SEED));
    assert!(g.domain.1 > g.domain.0);
    assert!(g.versions > 0);
    assert!(g.audit_records > 0);
}

#[test]
fn crash_on_first_workload_request() {
    // The earliest possible workload crash: nothing synced yet, so
    // recovery must fall back to the format-time anchor.
    let cfg = TortureConfig::bounded(SEED);
    let g = golden_run(&cfg);
    let outcome = torture_crash_point(&cfg, g.domain.0, TornPattern::Prefix(0));
    assert!(outcome.died);
}

#[test]
#[ignore = "exhaustive: replays every crash point of a 500-op workload; run with --ignored"]
fn exhaustive_crash_enumeration_holds_invariants() {
    let cfg = TortureConfig::exhaustive(SEED);
    let summary = enumerate(&cfg);
    let domain = (summary.domain.1 - summary.domain.0) as usize;
    assert_eq!(
        summary.crash_points, domain,
        "exhaustive mode must visit every countable request: {summary:?}"
    );
    assert_eq!(summary.died, summary.replays, "{summary:?}");
    // A 500-op workload crosses the anchor interval, so the domain must
    // include sync-class (anchor barrier) crash points.
    assert!(
        summary.sync_points > 0,
        "exhaustive workload never hit the anchor barrier: {summary:?}"
    );
}
