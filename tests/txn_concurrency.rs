//! Concurrent cross-shard atomic batches over the TCP surface
//! (DESIGN §6i): 8 threaded clients fire overlapping two-phase-commit
//! batches at a 4-shard × 2-mirror array. Every batch spans all four
//! shards, so every batch is a distributed transaction; the workers
//! interleave prepares from different coordinators freely.
//!
//! The bar: zero client-visible errors, zero partial batches (every
//! transaction commits on all four shards or none), per-client audit
//! streams that form exactly the issued sequence on every shard,
//! mirror byte-convergence, and the same answers after a full
//! unmount/remount. A second run kills one replica's device mid-run —
//! mid-prepare from the clients' point of view — and demands the same
//! guarantees from the survivors.

use std::sync::Arc;

use s4_array::{ArrayConfig, MemberState, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    AuditRecord, ClientId, DriveConfig, ObjectId, OpKind, Request, RequestContext, Response,
    UserId,
};
use s4_fs::{TcpServerHandle, TcpTransport, Transport};
use s4_simdisk::{BlockDev, FaultPlan, FaultyDisk, MemDisk, RequestClassMask};

const CLIENTS: u32 = 8;
const BATCHES_PER_CLIENT: u64 = 10;
const SHARDS: usize = 4;
const MIRRORS: usize = 2;

fn array_cfg() -> ArrayConfig {
    ArrayConfig {
        mirrors: MIRRORS,
        ..ArrayConfig::default()
    }
}

fn unwrap_arc<T>(mut arc: Arc<T>) -> T {
    for _ in 0..2000 {
        match Arc::try_unwrap(arc) {
            Ok(v) => return v,
            Err(a) => {
                arc = a;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    }
    panic!("server threads still hold the handler");
}

/// Each client creates one object per shard (creates round-robin until
/// every residue class is covered), then issues `BATCHES_PER_CLIENT`
/// cross-shard batches. Batch `s` writes `[c; 8]` at offset `s` into
/// all four objects — one sub-batch per shard, one 2PC transaction per
/// batch. Every call must succeed.
fn hammer(server: &TcpServerHandle) -> Vec<[ObjectId; SHARDS]> {
    let addr = server.addr();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let t = TcpTransport::connect(addr).unwrap();
                let ctx = RequestContext::user(UserId(100 + c), ClientId(c));
                let mut oids: [Option<ObjectId>; SHARDS] = [None; SHARDS];
                while oids.iter().any(Option::is_none) {
                    match t.call(&ctx, &Request::Create).unwrap() {
                        Response::Created(oid) => {
                            oids[oid.0 as usize % SHARDS].get_or_insert(oid);
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                let oids = oids.map(Option::unwrap);
                for seq in 0..BATCHES_PER_CLIENT {
                    let reqs = oids
                        .iter()
                        .map(|&oid| Request::Write {
                            oid,
                            offset: seq,
                            data: vec![c as u8; 8],
                        })
                        .collect();
                    match t.call(&ctx, &Request::Batch(reqs)).unwrap() {
                        Response::Batch(rs) => assert_eq!(rs.len(), SHARDS, "every slot answered"),
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                oids
            })
        })
        .collect();
    threads.into_iter().map(|t| t.join().unwrap()).collect()
}

/// Per client, per shard: the audited transactional writes form exactly
/// the issued sequence — no gap (a lost sub-batch would be a partial
/// transaction) and no reordering (prepares serialize per shard).
fn check_interleaving(records: &[AuditRecord], oids: &[[ObjectId; SHARDS]]) {
    for c in 0..CLIENTS {
        for (s, &oid) in oids[c as usize].iter().enumerate() {
            let issued: Vec<u64> = records
                .iter()
                .filter(|r| r.client == ClientId(c) && r.op == OpKind::Write && r.object == oid)
                .map(|r| {
                    assert!(r.ok, "client {c} write denied on shard {s}");
                    r.arg1
                })
                .collect();
            let expect: Vec<u64> = (0..BATCHES_PER_CLIENT).collect();
            assert_eq!(issued, expect, "client {c} stream on shard {s} not serial");
        }
    }
}

/// Every in-sync mirror pair agrees object-for-object, and nothing is
/// left in doubt or parked in the transaction namespace anywhere.
fn check_converged_and_clean<D: BlockDev + 'static>(a: &S4Array<D>) {
    let admin = RequestContext::admin(ClientId(0), 42);
    for s in 0..a.shard_count() {
        let states = &a.member_states()[s];
        let insync: Vec<usize> = (0..a.mirror_count())
            .filter(|&k| states[k] == MemberState::InSync)
            .collect();
        let first = a.member_drive(s, insync[0]);
        let ids = first.live_object_ids(&admin).unwrap();
        for &k in &insync[1..] {
            let other = a.member_drive(s, k);
            assert_eq!(
                ids,
                other.live_object_ids(&admin).unwrap(),
                "shard {s} object sets"
            );
            for &oid in &ids {
                assert_eq!(
                    first.object_digest(&admin, ObjectId(oid)).unwrap(),
                    other.object_digest(&admin, ObjectId(oid)).unwrap(),
                    "shard {s} object {oid} diverged between mirrors"
                );
            }
        }
        for &k in &insync {
            assert!(
                a.member_drive(s, k).txn_in_doubt().is_empty(),
                "shard {s} member {k} left in doubt"
            );
        }
    }
    match a.dispatch(&admin, &Request::PList { time: None }).unwrap() {
        Response::Partitions(ps) => {
            let stale = ps
                .iter()
                .filter(|(n, _)| n.starts_with("__s4/txn/"))
                .count();
            assert_eq!(stale, 0, "decision notes outlived their transactions");
        }
        other => panic!("unexpected response {other:?}"),
    }
}

/// Final contents: every object of every client carries the last
/// batch's write — reads answered by whatever member is first in line.
fn check_contents<D: BlockDev + 'static>(a: &S4Array<D>, oids: &[[ObjectId; SHARDS]]) {
    for (c, objs) in oids.iter().enumerate() {
        let ctx = RequestContext::user(UserId(100 + c as u32), ClientId(c as u32));
        for &oid in objs {
            match a
                .dispatch(
                    &ctx,
                    &Request::Read {
                        oid,
                        offset: BATCHES_PER_CLIENT - 1,
                        len: 8,
                        time: None,
                    },
                )
                .unwrap()
            {
                Response::Data(d) => assert_eq!(d, vec![c as u8; 8], "client {c} object {oid:?}"),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
}

#[test]
fn overlapping_cross_shard_batches_commit_atomically() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..SHARDS * MIRRORS)
        .map(|_| MemDisk::with_capacity_bytes(64 << 20))
        .collect();
    let a = S4Array::format(devices, DriveConfig::small_test(), array_cfg(), clock).unwrap();
    let array = Arc::new(a);

    let server = TcpServerHandle::serve(array.clone(), "127.0.0.1:0").unwrap();
    let oids = hammer(&server);

    // The transaction counters surface over the admin wire: every batch
    // committed, nothing aborted, nothing lagging.
    let status = TcpTransport::connect(server.addr())
        .unwrap()
        .fetch_txn_status()
        .unwrap();
    let want = format!("committed={} aborted=0", CLIENTS as u64 * BATCHES_PER_CLIENT);
    assert!(status.starts_with(&want), "txn status wire: {status}");
    server.shutdown();

    let a = unwrap_arc(array);
    check_converged_and_clean(&a);
    check_contents(&a, &oids);

    let admin = RequestContext::admin(ClientId(0), 42);
    let merged: Vec<AuditRecord> = a
        .read_audit_merged(&admin)
        .unwrap()
        .into_iter()
        .map(|r| r.record)
        .collect();
    check_interleaving(&merged, &oids);

    // The same answers after a clean unmount/remount.
    let devices = a.unmount().unwrap();
    let (a2, _) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new()).unwrap();
    check_converged_and_clean(&a2);
    check_contents(&a2, &oids);
    let merged: Vec<AuditRecord> = a2
        .read_audit_merged(&admin)
        .unwrap()
        .into_iter()
        .map(|r| r.record)
        .collect();
    check_interleaving(&merged, &oids);
}

#[test]
fn member_death_mid_prepare_stays_atomic_for_every_client() {
    type Disk = FaultyDisk<MemDisk>;
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));

    // Format clean, then re-arm: shard 2's first replica dies after a
    // handful of post-mount journal flushes — inside some client's
    // prepare window, while the batches are flying.
    let devices: Vec<Disk> = (0..SHARDS * MIRRORS)
        .map(|_| FaultyDisk::new(MemDisk::with_capacity_bytes(64 << 20), FaultPlan::none()))
        .collect();
    let a = S4Array::format(
        devices,
        DriveConfig::small_test(),
        array_cfg(),
        clock.clone(),
    )
    .unwrap();
    let devices: Vec<Disk> = a
        .unmount()
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            // Device index 2*MIRRORS: shard 2, member 0.
            let plan = if i == 2 * MIRRORS {
                FaultPlan::member_death_after_requests(
                    5,
                    RequestClassMask::WRITES.union(RequestClassMask::SYNCS),
                )
            } else {
                FaultPlan::none()
            };
            FaultyDisk::new(d.into_inner(), plan)
        })
        .collect();
    let (a, _) = S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), clock).unwrap();
    let array = Arc::new(a);

    let server = TcpServerHandle::serve(array.clone(), "127.0.0.1:0").unwrap();
    let oids = hammer(&server);
    server.shutdown();

    let a = unwrap_arc(array);
    // The victim is dead, its twin carried the shard through — every
    // transaction still committed on all four shards.
    assert_eq!(a.member_states()[2][0], MemberState::Dead);
    assert_eq!(a.member_states()[2][1], MemberState::InSync);
    assert!(a.shard_degraded(2));
    assert!(
        a.txn_status_text().starts_with(&format!(
            "committed={} aborted=0",
            CLIENTS as u64 * BATCHES_PER_CLIENT
        )),
        "status: {}",
        a.txn_status_text()
    );

    check_converged_and_clean(&a);
    check_contents(&a, &oids);

    let admin = RequestContext::admin(ClientId(0), 42);
    let merged: Vec<AuditRecord> = a
        .read_audit_merged(&admin)
        .unwrap()
        .into_iter()
        .map(|r| r.record)
        .collect();
    check_interleaving(&merged, &oids);

    // Online resync onto a fresh device: the rebuilt member must carry
    // every transactional write, byte-for-byte with its twin.
    a.resync_member(
        2,
        0,
        FaultyDisk::new(MemDisk::with_capacity_bytes(64 << 20), FaultPlan::none()),
    )
    .unwrap();
    assert!(!a.shard_degraded(2));
    check_converged_and_clean(&a);

    // Unmount/remount the healed array: the decisions stay decided,
    // the contents stay uniform.
    let devices = a.unmount().unwrap();
    let (a2, _) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new()).unwrap();
    check_contents(&a2, &oids);
    for s in 0..SHARDS {
        for k in 0..MIRRORS {
            if a2.member_states()[s][k] == MemberState::InSync {
                assert!(a2.member_drive(s, k).txn_in_doubt().is_empty(), "{s}/{k}");
            }
        }
    }
}
