//! End-to-end checks of the observability layer (`crates/obs`): the
//! metrics exposition a mounted drive serves, the in-memory flight
//! recorder's ring semantics, and the persisted trace stream's
//! crash-surviving readback.

use s4_clock::{SimClock, SimDuration};
use s4_core::{
    ClientId, DriveConfig, Request, RequestContext, S4Drive, TraceRecord, UserId, TRACE_OBJECT,
};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};

fn contexts(config: &DriveConfig) -> (RequestContext, RequestContext) {
    (
        RequestContext::admin(ClientId(9), config.admin_token),
        RequestContext::user(UserId(1), ClientId(1)),
    )
}

fn write(drive: &S4Drive<impl s4_simdisk::BlockDev>, ctx: &RequestContext, data: &[u8]) {
    let oid = match drive.dispatch(ctx, &Request::Create).unwrap() {
        s4_core::Response::Created(oid) => oid,
        other => panic!("unexpected {other:?}"),
    };
    drive
        .dispatch(
            ctx,
            &Request::Write {
                oid,
                offset: 0,
                data: data.to_vec(),
            },
        )
        .unwrap();
}

#[test]
fn exposition_reports_per_layer_latency_and_gauges() {
    // A timed disk so the per-layer histograms see real service time.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(64 << 20),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = S4Drive::format(disk, DriveConfig::small_test(), clock.clone()).unwrap();
    let (_, user) = contexts(drive.config());
    for i in 0..20u8 {
        write(&drive, &user, &vec![i; 2048]);
        clock.advance(SimDuration::from_millis(10));
    }
    drive.dispatch(&user, &Request::Sync).unwrap();

    let text = drive.metrics_text();
    for needle in [
        "s4_requests_total",
        "s4_bytes_written_total",
        "s4_rpc_latency_us{quantile=\"0.5\"}",
        "s4_rpc_latency_us{quantile=\"0.9\"}",
        "s4_rpc_latency_us{quantile=\"0.99\"}",
        "s4_journal_latency_us{quantile=\"0.99\"}",
        "s4_lfs_latency_us{quantile=\"0.99\"}",
        "s4_disk_latency_us{quantile=\"0.99\"}",
        "s4_history_pool_occupancy",
        "s4_detection_window_headroom_days",
        "s4_journal_depth",
        "s4_alert_object_blocks",
        "s4_trace_object_blocks",
    ] {
        assert!(text.contains(needle), "exposition missing {needle}:\n{text}");
    }
    // The sync flushed segments through the timed disk, so the disk
    // histogram must have observed nonzero service time.
    assert!(
        !text.contains("s4_disk_latency_us_count 0"),
        "timed disk saw no service time:\n{text}"
    );

    let json = drive.metrics_json();
    for needle in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"s4_rpc_latency_us\"",
        "\"p99_us\"",
    ] {
        assert!(json.contains(needle), "json exposition missing {needle}:\n{json}");
    }
}

#[test]
fn flight_ring_wraps_keeping_the_most_recent_requests() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let mut config = DriveConfig::small_test();
    config.flight_recorder_ring = 8;
    let drive = S4Drive::format(MemDisk::new(200_000), config, clock.clone()).unwrap();
    let (_, user) = contexts(drive.config());
    for i in 0..15u8 {
        write(&drive, &user, &[i]); // 2 dispatches each
        clock.advance(SimDuration::from_millis(1));
    }

    let recent = drive.flight_recent();
    assert_eq!(recent.len(), 8, "ring must cap at the configured size");
    let total = 30; // 15 creates + 15 writes
    for (i, rec) in recent.iter().enumerate() {
        assert_eq!(
            rec.seq,
            (total - 8 + i) as u64,
            "ring must hold the newest records oldest-first"
        );
    }
}

#[test]
fn persisted_traces_survive_crash_and_remount() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let drive = S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock.clone())
        .unwrap();
    let (_, user) = contexts(drive.config());
    // 140 dispatches: enough to spill two full trace blocks (58
    // records each) to the reserved trace object.
    for i in 0..69u8 {
        write(&drive, &user, &[i]);
        clock.advance(SimDuration::from_millis(1));
    }
    drive.dispatch(&user, &Request::Sync).unwrap();
    let live: Vec<TraceRecord> = {
        let (admin, _) = contexts(drive.config());
        drive.read_traces(&admin).unwrap()
    };
    assert_eq!(live.len(), 139, "one trace per dispatched request");

    // Power loss: all volatile state gone; remount from the image.
    let mem = drive.crash();
    let (d2, report) =
        S4Drive::mount_with_report(mem, DriveConfig::small_test(), SimClock::new()).unwrap();
    assert!(
        report.trace_blocks >= 2,
        "spilled trace blocks must be recovered: {report:?}"
    );
    let (admin, _) = contexts(d2.config());
    let recovered = d2.read_traces(&admin).unwrap();
    assert!(
        recovered.len() >= 2 * 58,
        "full trace blocks flushed by the sync must survive, got {}",
        recovered.len()
    );
    // Exact prefix of the pre-crash stream, contiguous from seq 0.
    for (i, (got, want)) in recovered.iter().zip(&live).enumerate() {
        assert_eq!(got.seq, i as u64);
        assert_eq!(got, want, "trace {i} diverged across the crash");
    }

    // New requests keep extending the stream contiguously.
    write(&d2, &user, b"post-crash");
    let after = d2.read_traces(&admin).unwrap();
    assert_eq!(after.len(), recovered.len() + 2);
    assert_eq!(after.last().unwrap().seq, after.len() as u64 - 1);

    // The reserved trace object is drive-written-only.
    let err = d2
        .dispatch(
            &user,
            &Request::Write {
                oid: TRACE_OBJECT,
                offset: 0,
                data: b"forge".to_vec(),
            },
        )
        .unwrap_err();
    assert!(matches!(err, s4_core::S4Error::AccessDenied));
}
