//! False-positive guard for the online detectors: the paper's full
//! PostMark configuration (5,000 files / 20,000 transactions, §5.1.1)
//! is a heavy but entirely honest workload — creates, appends, reads,
//! and deletes from a single client. Running it through the standard
//! detector set must raise **zero** alerts; anything else would make
//! the alert object useless noise in production.

use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_detect::{install_standard_monitor, read_alerts, scan_audit};
use s4_fs::{LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::MemDisk;
use s4_workloads::postmark::{generate, PostmarkConfig};
use s4_workloads::replay;

#[test]
fn clean_postmark_run_raises_no_alerts() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let drive = Arc::new(
        S4Drive::format(
            MemDisk::with_capacity_bytes(2 << 30),
            DriveConfig::default(),
            clock.clone(),
        )
        .unwrap(),
    );
    install_standard_monitor(&drive);
    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(1)),
        "pm",
        S4FsConfig::default(),
    )
    .unwrap();

    let phases = generate(&PostmarkConfig::default());
    for trace in [&phases.create, &phases.transactions, &phases.cleanup] {
        let stats = replay(&fs, trace);
        assert_eq!(stats.errors, 0, "trace must replay cleanly");
    }

    let online = read_alerts(&drive, &admin).unwrap();
    assert!(online.is_empty(), "clean PostMark raised alerts: {online:#?}");
    // The offline sweep over the same audit log must agree.
    let offline = scan_audit(&drive, &admin).unwrap();
    assert!(offline.is_empty(), "offline scan raised alerts: {offline:#?}");
}
