//! Live-reshard drill: 8 threaded TCP clients hammer a mirrored 4×2
//! array while the array splits live to 8×2, one residue class at a
//! time. The clients must see zero errors, the routing epoch must land
//! at base 8, every object must be served from its new home with its
//! pre-split digest, the audit stream must remain a serializable
//! interleaving of what the clients issued, and the doubled array must
//! survive a full unmount/remount cycle with the persisted epoch.

use std::collections::BTreeMap;
use std::sync::Arc;

use s4_array::{ArrayConfig, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    AuditRecord, ClientId, DriveConfig, ObjectId, OpKind, Request, RequestContext, Response,
    UserId,
};
use s4_fs::{TcpServerHandle, TcpTransport, Transport};
use s4_reshard::{double_array, ReshardConfig};
use s4_simdisk::MemDisk;

const CLIENTS: u32 = 8;
const WRITES_PER_CLIENT: u64 = 40;
const SHARDS: usize = 4;
const MIRRORS: usize = 2;
const PRELOAD: u64 = 24;

fn disk() -> MemDisk {
    MemDisk::with_capacity_bytes(64 << 20)
}

fn array_cfg() -> ArrayConfig {
    ArrayConfig {
        mirrors: MIRRORS,
        ..ArrayConfig::default()
    }
}

fn unwrap_arc<T>(mut arc: Arc<T>) -> T {
    for _ in 0..2000 {
        match Arc::try_unwrap(arc) {
            Ok(v) => return v,
            Err(a) => {
                arc = a;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    }
    panic!("server threads still hold the handler");
}

/// 8 client threads: create one object each, write a recognizable
/// sequence with periodic syncs. Every call must succeed — a reshard
/// in flight is the array's problem, not the client's.
fn hammer(server: &TcpServerHandle) -> Vec<ObjectId> {
    let addr = server.addr();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let t = TcpTransport::connect(addr).unwrap();
                let ctx = RequestContext::user(UserId(100 + c), ClientId(c));
                let oid = match t.call(&ctx, &Request::Create).unwrap() {
                    Response::Created(oid) => oid,
                    other => panic!("unexpected response {other:?}"),
                };
                for seq in 0..WRITES_PER_CLIENT {
                    t.call(
                        &ctx,
                        &Request::Write {
                            oid,
                            offset: seq,
                            data: vec![c as u8; 8],
                        },
                    )
                    .unwrap();
                    if seq % 8 == 7 {
                        t.call(&ctx, &Request::Sync).unwrap();
                    }
                }
                t.call(&ctx, &Request::Sync).unwrap();
                oid
            })
        })
        .collect();
    threads.into_iter().map(|t| t.join().unwrap()).collect()
}

/// Per client, the audited writes form exactly the issued sequence —
/// even though the writes may span the old shard's log and the new
/// shard's log across the flip.
fn check_interleaving(records: &[AuditRecord], oids: &[ObjectId]) {
    for c in 0..CLIENTS {
        let issued: Vec<u64> = records
            .iter()
            .filter(|r| r.client == ClientId(c) && r.op == OpKind::Write)
            .map(|r| {
                assert!(r.ok, "client {c} write denied");
                assert_eq!(r.object, oids[c as usize], "write audited on wrong object");
                r.arg1
            })
            .collect();
        let expect: Vec<u64> = (0..WRITES_PER_CLIENT).collect();
        assert_eq!(issued, expect, "client {c} stream not serial");
    }
}

#[test]
fn live_split_4_to_8_under_tcp_load_is_invisible() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let admin = RequestContext::admin(ClientId(0), 42);

    let devices = (0..SHARDS * MIRRORS).map(|_| disk()).collect();
    let a =
        S4Array::format(devices, DriveConfig::small_test(), array_cfg(), clock.clone()).unwrap();

    // Preload a population of objects so the snapshot phase has real
    // residue classes to migrate, and remember every digest.
    let owner = RequestContext::user(UserId(7), ClientId(99));
    let mut preload = Vec::new();
    for i in 0..PRELOAD {
        let oid = match a.dispatch(&owner, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        a.dispatch(
            &owner,
            &Request::Write {
                oid,
                offset: 0,
                data: vec![i as u8; 64],
            },
        )
        .unwrap();
        preload.push(oid);
    }
    a.dispatch(&owner, &Request::Sync).unwrap();
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    for &oid in &preload {
        let s = a.shard_index_of(oid);
        digests.insert(oid.0, a.shard_drive(s).object_digest(&admin, oid).unwrap());
    }

    // Serve TCP; hammer and reshard run concurrently.
    let array = Arc::new(a);
    let server = TcpServerHandle::serve(array.clone(), "127.0.0.1:0").unwrap();
    let hammer_server = TcpServerHandle::serve(array.clone(), "127.0.0.1:0").unwrap();
    let hammer_thread = {
        let s = hammer_server;
        std::thread::spawn(move || {
            let oids = hammer(&s);
            s.shutdown();
            oids
        })
    };

    let groups: Vec<Vec<MemDisk>> = (0..SHARDS).map(|_| (0..MIRRORS).map(|_| disk()).collect()).collect();
    let reports = double_array(&array, groups, ReshardConfig::default()).unwrap();
    assert_eq!(reports.len(), SHARDS);
    for r in &reports {
        assert!(r.snapshot_objects + r.catchup_objects + r.final_delta_objects > 0
            || r.cleaned_objects == 0);
    }

    let oids = hammer_thread.join().unwrap();

    // Routing landed in the doubled generation and the wire surfaces it.
    assert_eq!(array.epoch().base, 2 * SHARDS);
    assert_eq!(array.epoch().bits, 0);
    assert_eq!(array.shard_count(), 2 * SHARDS);
    let status = TcpTransport::connect(server.addr())
        .unwrap()
        .fetch_reshard_status()
        .unwrap();
    assert!(status.contains("base=8"), "{status}");
    assert!(status.contains("active=0"), "{status}");
    let stats = TcpTransport::connect(server.addr())
        .unwrap()
        .fetch_stats()
        .unwrap();
    assert!(stats.contains("s4_array_shards 8"), "{stats}");
    assert!(stats.contains("s4_reshard_flip_pause_us"), "{stats}");
    server.shutdown();
    let a = unwrap_arc(array);

    // Every preloaded object kept its digest across the migration and
    // is served from its doubled-class home shard.
    for &oid in &preload {
        let s = a.shard_index_of(oid);
        assert_eq!(a.shard_slot(s), (oid.0 % (2 * SHARDS as u64)) as usize);
        assert_eq!(
            a.shard_drive(s).object_digest(&admin, oid).unwrap(),
            digests[&oid.0],
            "object {oid:?} digest changed during migration"
        );
    }

    // The merged audit stream is still a serializable interleaving.
    let merged: Vec<AuditRecord> = a
        .read_audit_merged(&admin)
        .unwrap()
        .into_iter()
        .map(|r| r.record)
        .collect();
    check_interleaving(&merged, &oids);

    // The doubled array survives a full unmount/remount: the epoch is
    // read back from the partition table and every object still reads.
    let devices = a.unmount().unwrap();
    assert_eq!(devices.len(), 2 * SHARDS * MIRRORS);
    let (a2, _) =
        S4Array::mount(devices, DriveConfig::small_test(), array_cfg(), SimClock::new()).unwrap();
    assert_eq!(a2.epoch().base, 2 * SHARDS);
    for (i, &oid) in oids.iter().enumerate() {
        let ctx = RequestContext::user(UserId(100 + i as u32), ClientId(i as u32));
        match a2
            .dispatch(
                &ctx,
                &Request::Read {
                    oid,
                    offset: 0,
                    len: 8,
                    time: None,
                },
            )
            .unwrap()
        {
            Response::Data(d) => assert_eq!(d, vec![i as u8; 8]),
            other => panic!("unexpected response {other:?}"),
        }
    }
    for &oid in &preload {
        let s = a2.shard_index_of(oid);
        assert_eq!(
            a2.shard_drive(s).object_digest(&admin, oid).unwrap(),
            digests[&oid.0]
        );
    }
}
