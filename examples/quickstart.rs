//! Quickstart: format an S4 drive, store an object, travel in time.
//!
//! Run with: `cargo run --release --example quickstart`

use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, Request, RequestContext, Response, S4Drive, UserId};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};

fn main() {
    // A simulated 256 MB drive with the paper's disk timing model. Every
    // component charges service time to this shared simulated clock.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(256 << 20),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = S4Drive::format(disk, DriveConfig::default(), clock.clone()).unwrap();
    let alice = RequestContext::user(UserId(1), ClientId(1));

    // Talk to the drive through its audited RPC front door (Table 1).
    let call = |req: Request| drive.dispatch(&alice, &req).unwrap();
    let write = |oid, data: &[u8]| {
        call(Request::Write {
            oid,
            offset: 0,
            data: data.to_vec(),
        });
    };
    let read = |oid, time| match call(Request::Read {
        oid,
        offset: 0,
        len: 64,
        time,
    }) {
        Response::Data(d) => String::from_utf8_lossy(&d).to_string(),
        other => panic!("unexpected response {other:?}"),
    };

    // Create an object and write three versions of it.
    let oid = match call(Request::Create) {
        Response::Created(oid) => oid,
        other => panic!("unexpected response {other:?}"),
    };
    write(oid, b"draft one");
    let t1 = drive.now();
    clock.advance(SimDuration::from_secs(60));

    write(oid, b"draft two");
    let t2 = drive.now();
    clock.advance(SimDuration::from_secs(60));

    write(oid, b"final ver");
    call(Request::Sync);

    // The current version reads normally...
    println!("current:   {}", read(oid, None));

    // ...and every earlier version is one `time` parameter away (Table 1:
    // time-based access against the history pool).
    println!("at t1:     {}", read(oid, Some(t1)));
    println!("at t2:     {}", read(oid, Some(t2)));

    // Every request so far — including these reads — is in the audit log.
    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
    let audit = drive.read_audit_records(&admin).unwrap();
    println!("audit log: {} records", audit.len());
    for r in audit.iter().take(5) {
        println!(
            "  {:>12} user={:<3} client={:<3} {:?} on {} ok={}",
            r.time.to_string(),
            r.user.0,
            r.client.0,
            r.op,
            r.object,
            r.ok
        );
    }

    println!(
        "simulated time elapsed: {}  (disk + cpu + versioning, all modeled)",
        drive.now()
    );
}
