//! Capacity planning with the §5.2 model: how large must the history
//! pool be for a desired detection window under a given write rate?
//!
//! Run with: `cargo run --release --example capacity_planning`

use s4_capacity::{detection_window_days, figure7_rows, measure_factors};
use s4_workloads::profiles::ALL;
use s4_workloads::srctree::{self, SourceTreeConfig};

fn main() {
    println!("== Empirical space-efficiency factors ==");
    let tree = srctree::generate(&SourceTreeConfig {
        files: 60,
        ..SourceTreeConfig::default()
    });
    let m = measure_factors(&tree);
    println!(
        "differencing {:.2}x, differencing+compression {:.2}x (paper: ~3x / ~5x)",
        m.diff_factor(),
        m.compress_factor()
    );

    println!();
    println!("== Detection windows for a 10 GB pool (Figure 7) ==");
    for row in figure7_rows(10.0, m.diff_factor(), m.compress_factor()) {
        println!(
            "{:<10} baseline {:>5.0}d   +diff {:>5.0}d   +diff+comp {:>5.0}d",
            row.profile.name, row.baseline_days, row.diff_days, row.diff_compress_days
        );
    }

    println!();
    println!("== Pool size needed for a 30-day guaranteed window ==");
    for p in ALL {
        // Invert the model: pool = window * rate / factor.
        let days = 30.0;
        let baseline_gb = days * p.write_mb_per_day / 1024.0;
        let with_tech_gb = baseline_gb / m.compress_factor();
        println!(
            "{:<10} ({:>6.0} MB/day): {:>6.1} GB raw, {:>5.1} GB with diff+compression",
            p.name, p.write_mb_per_day, baseline_gb, with_tech_gb
        );
    }

    println!();
    println!("== Sensitivity: window vs pool size (AFS rate) ==");
    for pool_gb in [1.0, 5.0, 10.0, 20.0, 50.0] {
        println!(
            "{:>5.0} GB pool -> {:>6.0} days baseline, {:>6.0} days with diff+compression",
            pool_gb,
            detection_window_days(pool_gb, 143.0, 1.0),
            detection_window_days(pool_gb, 143.0, m.compress_factor())
        );
    }
}
