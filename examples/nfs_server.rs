//! A self-securing NFS-style server over a real TCP socket (Figure 1b).
//!
//! Starts an S4 drive, exports it over the framed-TCP S4 RPC protocol,
//! connects a client translator through the socket, and runs file-system
//! operations — including a time-based recovery — across the wire.
//!
//! Run with: `cargo run --release --example nfs_server`

use std::sync::Arc;

use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_fs::{FileServer, S4FileServer, S4FsConfig, TcpServerHandle, TcpTransport};
use s4_simdisk::MemDisk;

fn main() {
    // Server side: an S4 drive exported on an ephemeral local port.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let drive = Arc::new(
        S4Drive::format(
            MemDisk::with_capacity_bytes(128 << 20),
            DriveConfig::default(),
            clock.clone(),
        )
        .unwrap(),
    );
    let server = TcpServerHandle::serve(drive.clone(), "127.0.0.1:0").unwrap();
    println!("S4 drive serving on {}", server.addr());

    // Client side: the S4 client (NFS translator) over the socket.
    let transport = TcpTransport::connect(server.addr()).unwrap();
    let ctx = RequestContext::user(UserId(7), ClientId(1));
    let fs = S4FileServer::mount(transport, ctx, "export", S4FsConfig::default()).unwrap();

    let root = fs.root();
    let docs = fs.mkdir(root, "docs").unwrap();
    let report = fs.create(docs, "report.txt").unwrap();
    fs.write(report, 0, b"quarterly numbers: 42").unwrap();
    let t1 = drive.now();
    clock.advance(SimDuration::from_secs(30));
    fs.write(report, 0, b"quarterly numbers: 17").unwrap();

    let now = fs.read(report, 0, 64).unwrap();
    println!("current over TCP : {}", String::from_utf8_lossy(&now));

    // Time-based read across the wire.
    let old = fs.read_at(report, 0, 64, t1).unwrap();
    println!("at t1 over TCP   : {}", String::from_utf8_lossy(&old));

    let listing = fs.readdir(docs).unwrap();
    println!("readdir(docs)    : {listing:?}");

    server.shutdown();
    println!("server shut down cleanly");
}
