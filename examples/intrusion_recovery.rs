//! The paper's motivating scenario, end to end (§2, §3.1):
//!
//! An intruder compromises a client, scrubs the system log, plants a
//! backdoor, briefly stores an exploit tool, and deletes it. The
//! administrator then uses the history pool and the audit log to detect
//! the intrusion, diagnose what happened, recover the deleted exploit
//! tool as evidence, and restore the tampered files — all without a
//! backup and without trusting the compromised host.
//!
//! Run with: `cargo run --release --example intrusion_recovery`

use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_fs::tools::{damage_report, ls_at, read_file_at, restore_file};
use s4_fs::{FileServer, LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};

fn main() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(256 << 20),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = Arc::new(S4Drive::format(disk, DriveConfig::default(), clock.clone()).unwrap());
    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);

    // The legitimate system: a root user on client 1 sets up /etc and
    // /var/log.
    let system = RequestContext::user(UserId(1), ClientId(1));
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::lan_100mbit()),
        system,
        "rootfs",
        S4FsConfig::default(),
    )
    .unwrap();
    let root = fs.root();
    fs.mkdir(root, "etc").unwrap();
    fs.mkdir(root, "var").unwrap();
    let var = fs.lookup(root, "var").unwrap();
    fs.mkdir(var, "log").unwrap();
    let passwd = fs
        .create(fs.lookup(root, "etc").unwrap(), "passwd")
        .unwrap();
    fs.write(passwd, 0, b"root:x:0:0\nalice:x:1000:1000\n")
        .unwrap();
    let log = fs
        .create(fs.resolve_path("var/log").unwrap(), "auth.log")
        .unwrap();
    fs.write(log, 0, b"09:01 sshd accepted key for alice\n")
        .unwrap();

    clock.advance(SimDuration::from_secs(3600));
    let pre_intrusion = fs.now();
    println!("T0  clean system at {pre_intrusion}");

    // ---- The intrusion: client 66 has stolen root's credentials. The
    // drive cannot stop these writes (they carry valid credentials), but
    // it versions and audits every one of them.
    clock.advance(SimDuration::from_secs(600));
    let intruder_fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::lan_100mbit()),
        RequestContext::user(UserId(1), ClientId(66)), // stolen identity!
        "rootfs",
        S4FsConfig::default(),
    )
    .unwrap();
    let iroot = intruder_fs.root();
    // The intruder's login was logged automatically...
    let ilog = intruder_fs.resolve_path("var/log/auth.log").unwrap();
    intruder_fs
        .write(ilog, 34, b"10:13 sshd accepted key for root from 6.6.6.6\n")
        .unwrap();
    let login_logged = fs.now();
    clock.advance(SimDuration::from_secs(5));
    // 1. ...so scrubbing the log is the classic first move (§2.1).
    intruder_fs.truncate(ilog, 0).unwrap();
    intruder_fs
        .write(ilog, 0, b"09:01 sshd accepted key for alice\n")
        .unwrap(); // re-written without the intruder's own entries
                   // 2. Plant a backdoor account.
    let ipasswd = intruder_fs.resolve_path("etc/passwd").unwrap();
    intruder_fs.write(ipasswd, 29, b"evil:x:0:0\n").unwrap();
    // 3. Stage an exploit tool and delete it after use.
    let tmp = intruder_fs.mkdir(iroot, "tmp").unwrap();
    let tool = intruder_fs.create(tmp, ".scan").unwrap();
    intruder_fs
        .write(tool, 0, b"#!/bin/sh\n# rootkit dropper v3\nnc -l 31337 &\n")
        .unwrap();
    clock.advance(SimDuration::from_secs(30));
    intruder_fs.remove(tmp, ".scan").unwrap();
    let post_intrusion = fs.now();
    println!(
        "T1  intrusion complete at {post_intrusion} (log scrubbed, backdoor planted, tool wiped)"
    );

    // ---- Detection & diagnosis (hours later).
    clock.advance(SimDuration::from_secs(7200));

    // The audit log pins down exactly what client 66 touched.
    let report = damage_report(
        &drive,
        &admin,
        ClientId(66),
        pre_intrusion,
        post_intrusion,
        SimDuration::from_secs(300),
    )
    .unwrap();
    println!(
        "T2  audit analysis: client 66 issued {} requests, modified {} objects",
        report.request_count,
        report.modified.len()
    );

    // Versioned logs cannot be imperceptibly altered: compare.
    // The scrubbed entry is still in the history pool: read the log as it
    // was the instant the intruder logged in.
    let log_mid = read_file_at(&fs, "var/log/auth.log", login_logged).unwrap();
    let log_now = read_file_at(&fs, "var/log/auth.log", fs.now()).unwrap();
    assert!(String::from_utf8_lossy(&log_mid).contains("6.6.6.6"));
    assert!(!String::from_utf8_lossy(&log_now).contains("6.6.6.6"));
    println!(
        "    scrubbed log line recovered from history: {:?}",
        String::from_utf8_lossy(&log_mid[34..]).trim_end()
    );

    // The deleted exploit tool is still in the history pool: list /tmp as
    // it was mid-intrusion and recover the evidence.
    let during = post_intrusion.saturating_sub(SimDuration::from_secs(10));
    let tmp_listing = ls_at(&fs, "tmp", during).unwrap();
    println!("    /tmp during the intrusion: {tmp_listing:?}");
    let evidence = {
        let h = fs.resolve_path_at("tmp/.scan", during).unwrap();
        fs.read_at(h, 0, 4096, during).unwrap()
    };
    println!(
        "    recovered exploit tool ({} bytes): {:?}...",
        evidence.len(),
        String::from_utf8_lossy(&evidence[..28])
    );

    // ---- Recovery: copy the pre-intrusion versions forward (§3.3 —
    // restoration creates new versions; history is never rewritten).
    restore_file(&fs, "etc/passwd", pre_intrusion).unwrap();
    restore_file(&fs, "var/log/auth.log", pre_intrusion).unwrap();
    let restored = read_file_at(&fs, "etc/passwd", fs.now()).unwrap();
    assert!(!String::from_utf8_lossy(&restored).contains("evil"));
    println!("T3  etc/passwd and var/log/auth.log restored from the history pool");
    println!("    (the intruder's versions remain in the pool for forensics)");
}
