//! The paper's motivating scenario, end to end (§2, §3.1) — with the
//! `s4-detect` subsystem watching from inside the drive's perimeter.
//!
//! An intruder compromises a client, scrubs the system log, plants a
//! backdoor, briefly stores an exploit tool, and deletes it. The drive
//! cannot refuse the requests (they carry valid credentials), but its
//! online detectors analyse every audited request and persist alerts to
//! an object only the drive itself can write. The administrator reads
//! the alerts, reconstructs the damage with the forensic tools, and
//! executes a reviewable recovery plan — all without a backup and
//! without trusting the compromised host.
//!
//! Run with: `cargo run --release --example intrusion_recovery`

use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock, SimDuration, SimTime};
use s4_core::{ClientId, DriveConfig, ObjectId, RequestContext, S4Drive, UserId};
use s4_detect::{
    damage_report, execute_plan, install_standard_monitor, object_timeline, plan_recovery,
    read_alerts, scan_audit, tree_diff, Severity, Suspects,
};
use s4_fs::tools::{ls_at, read_file_at};
use s4_fs::{FileServer, LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};

fn main() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(256 << 20),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = Arc::new(S4Drive::format(disk, DriveConfig::default(), clock.clone()).unwrap());
    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);

    // The detectors live behind the security perimeter from day one:
    // every audited request is analysed as it arrives, and alerts land
    // in the reserved alert object no client credential can modify.
    install_standard_monitor(&drive);

    // The legitimate system: a root user on client 1 sets up /etc and
    // /var/log.
    let system = RequestContext::user(UserId(1), ClientId(1));
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::lan_100mbit()),
        system,
        "rootfs",
        S4FsConfig::default(),
    )
    .unwrap();
    let root = fs.root();
    fs.mkdir(root, "etc").unwrap();
    fs.mkdir(root, "var").unwrap();
    let var = fs.lookup(root, "var").unwrap();
    fs.mkdir(var, "log").unwrap();
    let passwd = fs
        .create(fs.lookup(root, "etc").unwrap(), "passwd")
        .unwrap();
    fs.write(passwd, 0, b"root:x:0:0\nalice:x:1000:1000\n")
        .unwrap();
    let log = fs
        .create(fs.resolve_path("var/log").unwrap(), "auth.log")
        .unwrap();
    fs.write(log, 0, b"09:01 sshd accepted key for alice\n")
        .unwrap();

    clock.advance(SimDuration::from_secs(3600));
    let pre_intrusion = fs.now();
    println!("T0  clean system at {pre_intrusion}");

    // ---- The intrusion: client 66 has stolen root's credentials. The
    // drive cannot stop these writes (they carry valid credentials), but
    // it versions, audits, and now *analyses* every one of them.
    clock.advance(SimDuration::from_secs(600));
    // The intruder's login is logged automatically by the still-honest
    // logging path on client 1 (an append to auth.log)...
    fs.write(log, 34, b"10:13 sshd accepted key for root from 6.6.6.6\n")
        .unwrap();
    let login_logged = fs.now();
    clock.advance(SimDuration::from_secs(5));
    let intruder_fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::lan_100mbit()),
        RequestContext::user(UserId(1), ClientId(66)), // stolen identity!
        "rootfs",
        S4FsConfig::default(),
    )
    .unwrap();
    let iroot = intruder_fs.root();
    let ilog = intruder_fs.resolve_path("var/log/auth.log").unwrap();
    // 1. ...so scrubbing the log is the classic first move (§2.1). The
    //    log object has only ever been appended to; the truncate breaks
    //    that pattern and fires the append-only-violation detector.
    intruder_fs.truncate(ilog, 0).unwrap();
    intruder_fs
        .write(ilog, 0, b"09:01 sshd accepted key for alice\n")
        .unwrap(); // re-written without the intruder's own entries
                   // 2. Plant a backdoor account (an append, so the log-scrub rule
                   //    stays quiet — the foreign-client rule catches it instead).
    let ipasswd = intruder_fs.resolve_path("etc/passwd").unwrap();
    intruder_fs.write(ipasswd, 29, b"evil:x:0:0\n").unwrap();
    // 3. Stage an exploit tool and delete it after use.
    let tmp = intruder_fs.mkdir(iroot, "tmp").unwrap();
    let tool = intruder_fs.create(tmp, ".scan").unwrap();
    intruder_fs
        .write(tool, 0, b"#!/bin/sh\n# rootkit dropper v3\nnc -l 31337 &\n")
        .unwrap();
    clock.advance(SimDuration::from_secs(30));
    intruder_fs.remove(tmp, ".scan").unwrap();
    let post_intrusion = fs.now();
    println!(
        "T1  intrusion complete at {post_intrusion} (log scrubbed, backdoor planted, tool wiped)"
    );

    // ---- Detection (hours later): the alerts were persisted *during*
    // the intrusion by the drive itself.
    clock.advance(SimDuration::from_secs(7200));
    let alerts = read_alerts(&drive, &admin).unwrap();
    println!("T2  {} alerts waiting in the drive's alert object:", alerts.len());
    for a in &alerts {
        println!("      {a}");
    }
    let scrub = alerts
        .iter()
        .find(|a| a.rule == "append-only-violation")
        .expect("the log scrub must be flagged");
    assert_eq!(scrub.object, ObjectId(ilog));
    assert_eq!(scrub.severity, Severity::Critical);
    assert_eq!(scrub.client, ClientId(66));
    assert!(
        alerts
            .iter()
            .any(|a| a.rule == "foreign-client" && a.object == ObjectId(ipasswd)),
        "the backdoor plant must be flagged"
    );
    // An offline sweep over the full audit log reaches the same verdict.
    let offline = scan_audit(&drive, &admin).unwrap();
    assert!(offline.iter().any(|a| a.rule == "append-only-violation"));

    // The alerts bound the intrusion: everything from the first alert
    // onward is suspect. Plan against the instant just before it.
    let first_alert = alerts.iter().map(|a| a.time).min().unwrap();
    let t = SimTime::from_micros(first_alert.as_micros() - 1);
    assert!(t >= pre_intrusion);

    // ---- Diagnosis: what exactly did client 66 do?
    let report = damage_report(
        &drive,
        &admin,
        ClientId(66),
        t,
        post_intrusion,
        SimDuration::from_secs(300),
    )
    .unwrap();
    println!(
        "T3  audit analysis: client 66 issued {} requests, modified {} objects",
        report.request_count,
        report.modified.len()
    );
    let rootfs = drive.op_pmount(&admin, "rootfs", None).unwrap();
    let diff = tree_diff(&drive, &admin, rootfs, t, None).unwrap();
    println!(
        "    namespace diff since T: added {:?}, modified {} entries",
        diff.added.iter().map(|(p, _)| p.as_str()).collect::<Vec<_>>(),
        diff.modified.len()
    );
    println!("    tamper timeline of var/log/auth.log:");
    let log_timeline = object_timeline(&drive, &admin, ObjectId(ilog)).unwrap();
    for e in log_timeline.iter().rev().take(4).rev() {
        println!("      {} {}", e.time, e.description);
    }

    // The scrubbed entry is still in the history pool...
    let log_mid = read_file_at(&fs, "var/log/auth.log", login_logged).unwrap();
    assert!(String::from_utf8_lossy(&log_mid).contains("6.6.6.6"));
    println!(
        "    scrubbed log line recovered from history: {:?}",
        String::from_utf8_lossy(&log_mid[34..]).trim_end()
    );
    // ...and so is the deleted exploit tool.
    let during = post_intrusion.saturating_sub(SimDuration::from_secs(10));
    println!(
        "    /tmp during the intrusion: {:?}",
        ls_at(&fs, "tmp", during).unwrap()
    );

    // ---- Recovery: a reviewable plan, then execution (§3.3 —
    // restoration creates new versions; history is never rewritten).
    let plan = plan_recovery(&drive, &admin, &Suspects::client(ClientId(66)), t).unwrap();
    println!("T4  recovery plan ({} actions):", plan.actions.len());
    for pa in &plan.actions {
        println!("      {}", pa.action);
    }
    let outcome = execute_plan(&drive, &admin, &plan).unwrap();
    assert!(
        outcome.failed.is_empty(),
        "recovery failed: {:?}",
        outcome.failed
    );

    // Verify through a fresh mount (no stale client caches).
    let check = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::lan_100mbit()),
        system,
        "rootfs",
        S4FsConfig::default(),
    )
    .unwrap();
    let now = check.now();
    let passwd_now = read_file_at(&check, "etc/passwd", now).unwrap();
    assert!(!String::from_utf8_lossy(&passwd_now).contains("evil"));
    // Restoring to just before the first alert keeps the honest login
    // append — the intruder's own log entry is back in the live file.
    let log_now = read_file_at(&check, "var/log/auth.log", now).unwrap();
    assert_eq!(log_now, log_mid);
    assert!(String::from_utf8_lossy(&log_now).contains("6.6.6.6"));
    assert!(check.resolve_path("tmp").is_err(), "planted /tmp not removed");
    // The wiped exploit tool survives as landmark-pinned evidence.
    assert!(!drive.landmarks(&admin, ObjectId(tool)).unwrap().is_empty());
    println!("T5  restored: backdoor gone, log intact, planted files removed");
    println!("    (the intruder's versions stay in the pool, pinned, as evidence)");
}
