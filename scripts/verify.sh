#!/usr/bin/env bash
# Tier-1 verification: everything a reviewer needs to trust a change.
#
# 1. hermetic release build (no registry access required)
# 2. the full test suite (dev profile is optimized; see Cargo.toml)
# 3. the bounded crash-torture campaign: fixed seed, ≤64 crash points ×
#    2 torn prefixes over the S4 write path, all four recovery
#    invariants asserted per replay (crates/torture)
# 4. the §2 intrusion scenario end-to-end: the online detectors must
#    flag the staged intrusion and the recovery plan must restore the
#    pre-intrusion state (the example asserts both)
#
# The exhaustive campaign (every crash point of a 500-op workload) is
# not part of tier-1; run it with:
#   cargo test --test crash_torture -- --ignored
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== crash-torture bounded campaign (fixed seed)"
cargo test -q --test crash_torture

echo "== intrusion_recovery example (detectors + recovery planner)"
cargo run --release --example intrusion_recovery

echo "verify: OK"
