#!/usr/bin/env bash
# Tier-1 verification: everything a reviewer needs to trust a change.
#
# 1. hermetic release build (no registry access required)
# 2. the full test suite (dev profile is optimized; see Cargo.toml)
# 3. the §2 intrusion scenario end-to-end: the online detectors must
#    flag the staged intrusion and the recovery plan must restore the
#    pre-intrusion state (the example asserts both)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== intrusion_recovery example (detectors + recovery planner)"
cargo run --release --example intrusion_recovery

echo "verify: OK"
