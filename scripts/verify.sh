#!/usr/bin/env bash
# Tier-1 verification: everything a reviewer needs to trust a change.
#
# 1. hermetic release build (no registry access required)
# 2. the full test suite (dev profile is optimized; see Cargo.toml)
# 3. the bounded crash-torture campaign: fixed seed, ≤64 crash points ×
#    2 torn prefixes over the S4 write path, all four recovery
#    invariants asserted per replay (crates/torture)
# 4. the §2 intrusion scenario end-to-end: the online detectors must
#    flag the staged intrusion and the recovery plan must restore the
#    pre-intrusion state (the example asserts both)
# 5. the observability smoke check: format a scratch image, drive it
#    through the CLI, and require `s4 stats` to expose the per-layer
#    latency summaries and window gauges (saved to target/verify-stats.prom)
# 6. lint gate: clippy over every target with warnings denied
# 7. the array stress test: 8 threaded TCP clients against a lone drive
#    and a 4-shard array; the recovered audit stream must be a
#    serializable interleaving (also part of the workspace suite — rerun
#    here so a failure is named in the verify transcript)
# 8. the member-kill drill: 8 TCP clients against a mirrored 4×2 array
#    while one replica's device dies mid-run — zero client-visible
#    errors, degraded mode surfaced on the stats wire and the alert
#    stream, online resync restores redundancy
# 9. the crash-during-recovery smoke campaign: a second power loss
#    injected inside the recovery replay itself, plus the
#    cleaner-between-crashes campaign (both named here so a failure is
#    visible in the verify transcript)
# 10. the array scale-out bench at smoke scale, which asserts >= 2x
#    simulated throughput at 4 shards and that degraded-mode throughput
#    stays >= 0.5x healthy (BENCH_JSON line; committed baseline in
#    BENCH_array.json)
# 11. the online-reshard drill: a live 4->8 residue-class split under
#    8 concurrent TCP clients (zero client-visible errors, digests
#    preserved, serializable audit) plus the crash-point campaign
#    (wholly-old / wholly-new routing after remount) and the offline
#    digest-equality baseline
# 12. the reshard bench at smoke scale, which asserts the flip pause
#    stays within one shard's queue drain and migration keeps >= 0.5x
#    steady throughput (BENCH_JSON line; committed baseline in
#    BENCH_reshard.json)
# 13. the two-phase-commit torture gate (DESIGN 6i): the bounded crash
#    campaign over the cross-shard atomic-batch window (all-or-nothing
#    at every sampled power-loss point, double-remount idempotence),
#    plus the concurrent-batch drill (8 TCP clients, overlapping
#    cross-shard transactions on a mirrored 4x2 array, member death
#    mid-prepare) and the randomized commit-or-rollback oracle
# 14. the trace-assembly smoke: a traced cross-shard batch on a
#    mirrored 4x2 array must assemble into one causal tree spanning
#    every member and survive crash + remount, plus the `s4 trace`
#    CLI drill across invocations
# 15. the tracing-overhead bench at smoke scale, which asserts request
#    tracing costs <= 5% of 8-client stress throughput (BENCH_JSON
#    line; committed baseline in BENCH_trace.json)
#
# The exhaustive campaigns (every crash point of a 500-op workload,
# every second-crash point inside recovery, and every 2PC crash point
# on both array shapes) are not part of tier-1; run them with:
#   cargo test --test crash_torture -- --ignored
#   cargo test --test txn_torture -- --ignored
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== crash-torture bounded campaign (fixed seed)"
cargo test -q --test crash_torture

echo "== intrusion_recovery example (detectors + recovery planner)"
cargo run --release --example intrusion_recovery

echo "== s4 stats smoke check (metrics exposition)"
S4_IMG="$(mktemp -d)/verify.s4"
./target/release/s4 format "$S4_IMG" 64
echo "observability smoke" | ./target/release/s4 put "$S4_IMG" verify.txt
./target/release/s4 stats "$S4_IMG" > target/verify-stats.prom
for metric in \
    's4_rpc_latency_us{quantile="0.5"}' \
    's4_rpc_latency_us{quantile="0.99"}' \
    s4_journal_latency_us \
    s4_lfs_latency_us \
    s4_disk_latency_us \
    s4_detection_window_headroom_days \
    s4_history_pool_occupancy \
    s4_requests_total; do
  grep -qF "$metric" target/verify-stats.prom \
    || { echo "verify: exposition missing $metric" >&2; exit 1; }
done
rm -rf "$(dirname "$S4_IMG")"
echo "exposition OK: target/verify-stats.prom"

echo "== array stress (8 TCP clients, single-drive + 4-shard array)"
cargo test -q --test array_stress

echo "== array member-kill drill (mirrored 4x2, one replica dies mid-run)"
cargo test -q --test array_member_kill

echo "== crash-during-recovery + cleaner-between-crashes smoke campaigns"
cargo test -q --test crash_torture crash_during_recovery_holds_invariants
cargo test -q --test crash_torture cleaner_between_crash_and_remount_holds_invariants

echo "== fig_array scale-out bench (smoke scale, asserts >=2x at 4 shards)"
S4_BENCH_SCALE="${S4_BENCH_SCALE:-0.25}" cargo bench -p s4-bench --bench fig_array \
  | tee target/fig_array.out
grep -q '^BENCH_JSON ' target/fig_array.out \
  || { echo "verify: fig_array emitted no BENCH_JSON line" >&2; exit 1; }
grep '^BENCH_JSON ' target/fig_array.out | sed 's/^BENCH_JSON //' > target/BENCH_array.json

echo "== online-reshard drill (live 4->8 split under 8 TCP clients)"
cargo test -q --test array_reshard_live
cargo test -q --test reshard_torture
cargo test -q --test reshard_offline
cargo test -q --test array_broadcast_concurrency

echo "== 2PC torture gate (bounded crash campaign + concurrency + oracle)"
cargo test -q --test txn_torture -- --nocapture | tee target/txn-torture.out
grep '^TXN_TORTURE ' target/txn-torture.out > target/txn-torture-summary.txt \
  || { echo "verify: txn_torture emitted no TXN_TORTURE summary" >&2; exit 1; }
cargo test -q --test txn_concurrency
cargo test -q --test txn_property_hermetic

echo "== fig_reshard bench (smoke scale, asserts flip pause <= queue drain)"
S4_BENCH_SCALE="${S4_BENCH_SCALE:-0.25}" cargo bench -p s4-bench --bench fig_reshard \
  | tee target/fig_reshard.out
grep -q '^BENCH_JSON ' target/fig_reshard.out \
  || { echo "verify: fig_reshard emitted no BENCH_JSON line" >&2; exit 1; }
grep '^BENCH_JSON ' target/fig_reshard.out | sed 's/^BENCH_JSON //' > target/BENCH_reshard.json

echo "== trace-assembly smoke (cross-shard causal tree + s4 trace CLI)"
cargo test -q --test trace_assembly
cargo test -q --test cli cli_trace_assembles_across_invocations

echo "== fig_trace bench (smoke scale, asserts tracing overhead <= 5%)"
S4_BENCH_SCALE="${S4_BENCH_SCALE:-0.25}" cargo bench -p s4-bench --bench fig_trace \
  | tee target/fig_trace.out
grep -q '^BENCH_JSON ' target/fig_trace.out \
  || { echo "verify: fig_trace emitted no BENCH_JSON line" >&2; exit 1; }
grep '^BENCH_JSON ' target/fig_trace.out | sed 's/^BENCH_JSON //' > target/BENCH_trace.json

echo "verify: OK"
